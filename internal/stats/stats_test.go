package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMeanMedianBasics(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Mean(xs); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Median(xs); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Median = %v, want 2.5", got)
	}
	if got := Median([]float64{5, 1, 9}); !almostEq(got, 5, 1e-12) {
		t.Errorf("odd Median = %v, want 5", got)
	}
}

func TestEmptyInputsAreNaN(t *testing.T) {
	for name, got := range map[string]float64{
		"Mean":     Mean(nil),
		"Median":   Median(nil),
		"Variance": Variance(nil),
		"StdDev":   StdDev(nil),
		"Min":      Min(nil),
		"Max":      Max(nil),
		"Quantile": Quantile(nil, 0.5),
	} {
		if !math.IsNaN(got) {
			t.Errorf("%s(nil) = %v, want NaN", name, got)
		}
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestSampleStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// Sample variance = 5/3.
	if got := SampleStdDev(xs); !almostEq(got, math.Sqrt(5.0/3.0), 1e-12) {
		t.Errorf("SampleStdDev = %v", got)
	}
	if got := SampleStdDev([]float64{1}); !math.IsNaN(got) {
		t.Errorf("SampleStdDev of singleton = %v, want NaN", got)
	}
}

func TestQuantileType7(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(xs, -0.1); !math.IsNaN(got) {
		t.Errorf("Quantile(-0.1) = %v, want NaN", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := Quantile(xs, qa), Quantile(xs, qb)
		return va <= vb && va >= Min(xs)-1e-9 && vb <= Max(xs)+1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{3.2, -1.5, 8.8, 0, 2.25, 7}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-12) {
		t.Errorf("Welford mean = %v, want %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Welford variance = %v, want %v", w.Variance(), Variance(xs))
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	if err := quick.Check(func(a, b []float64) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, x := range in {
				if !math.IsNaN(x) && !math.IsInf(x, 0) {
					out = append(out, math.Mod(x, 1e6))
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var w1, w2, all Welford
		for _, x := range a {
			w1.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			w2.Add(x)
			all.Add(x)
		}
		w1.Merge(w2)
		if w1.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		meanTol := 1e-9 * (1 + math.Abs(all.Mean()))
		varTol := 1e-9 * (1 + math.Abs(all.Variance()))
		return almostEq(w1.Mean(), all.Mean(), meanTol) && almostEq(w1.Variance(), all.Variance(), varTol)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBoxplotKnown(t *testing.T) {
	// 1..9 with one extreme outlier.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b, err := NewBoxplot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(b.Median, 5.5, 1e-12) {
		t.Errorf("Median = %v, want 5.5", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("Outliers = %v, want [100]", b.Outliers)
	}
	if b.HiWhisk != 9 || b.LoWhisk != 1 {
		t.Errorf("whiskers = [%v, %v], want [1, 9]", b.LoWhisk, b.HiWhisk)
	}
}

func TestBoxplotEmpty(t *testing.T) {
	if _, err := NewBoxplot(nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestBoxplotInvariants(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		b, err := NewBoxplot(xs)
		if err != nil {
			return false
		}
		// Ordering invariants of the five-number summary. Note: with
		// type-7 interpolated quantiles on tiny samples an extreme
		// outlier can drag Q1 below the low whisker (the whisker is the
		// smallest *observation* inside the fences, the quartile is an
		// interpolation), so LoWhisk <= Q1 is NOT an invariant; the
		// quartile ordering and whisker ordering are.
		if !(b.Q1 <= b.Median && b.Median <= b.Q3 && b.LoWhisk <= b.HiWhisk) {
			return false
		}
		// Outliers lie strictly outside the fences.
		for _, o := range b.Outliers {
			if o >= b.Q1-1.5*b.IQR() && o <= b.Q3+1.5*b.IQR() {
				return false
			}
		}
		// Whiskers + outliers account for the extremes.
		sort.Float64s(xs)
		loAll, hiAll := xs[0], xs[len(xs)-1]
		coveredLo := b.LoWhisk == loAll || (len(b.Outliers) > 0 && b.Outliers[0] == loAll)
		coveredHi := b.HiWhisk == hiAll || (len(b.Outliers) > 0 && b.Outliers[len(b.Outliers)-1] == hiAll)
		return coveredLo && coveredHi
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRenderBoxplots(t *testing.T) {
	b1, _ := NewBoxplot([]float64{1, 2, 3, 4, 5})
	b2, _ := NewBoxplot([]float64{2, 4, 6, 8, 50})
	out := RenderBoxplots([]string{"FCFS", "F1"}, []Boxplot{b1, b2}, 40)
	if out == "" {
		t.Fatal("empty render")
	}
	if got := len(splitLines(out)); got != 3 {
		t.Errorf("render has %d lines, want 3", got)
	}
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				lines = append(lines, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}

func TestRenderBoxplotsEdgeCases(t *testing.T) {
	b, _ := NewBoxplot([]float64{1, 2, 3})
	if out := RenderBoxplots([]string{"a", "b"}, []Boxplot{b}, 40); out != "" {
		t.Error("mismatched labels must render nothing")
	}
	if out := RenderBoxplots(nil, nil, 40); out != "" {
		t.Error("empty input must render nothing")
	}
	// Degenerate all-equal data still renders.
	flat, _ := NewBoxplot([]float64{5, 5, 5})
	if out := RenderBoxplots([]string{"flat"}, []Boxplot{flat}, 40); out == "" {
		t.Error("flat distribution must still render")
	}
}

func TestHistogramRenderEmpty(t *testing.T) {
	h := NewHistogram(0, 10, 3)
	if h.Render(20) == "" {
		t.Error("empty histogram must render bin rows")
	}
	if h.Fraction(0) != 0 {
		t.Error("empty histogram fraction must be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 5, 9.9, -3, 42, math.NaN()} {
		h.Add(x)
	}
	if h.Total() != 7 { // NaN dropped
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if h.Counts[0] != 3 { // 0, 1, and clamped -3
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9 and clamped 42
		t.Errorf("bin 4 = %d, want 2", h.Counts[4])
	}
	if got := h.Fraction(0); !almostEq(got, 3.0/7.0, 1e-12) {
		t.Errorf("Fraction(0) = %v", got)
	}
	if h.Render(30) == "" {
		t.Error("empty histogram render")
	}
}
