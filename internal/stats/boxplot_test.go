package stats

// Unit tests specific to boxplot.go beyond the summary checks in
// stats_test.go: exact type-7 quartiles, degenerate inputs, the String
// rendering, and the content (not just the shape) of RenderBoxplots.

import (
	"strings"
	"testing"
)

func TestNewBoxplotFiveNumberSummary(t *testing.T) {
	// 1..9: type-7 quartiles land exactly on order statistics.
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5} // unsorted on purpose
	b, err := NewBoxplot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 9 || b.Q1 != 3 || b.Median != 5 || b.Q3 != 7 {
		t.Fatalf("summary: %+v", b)
	}
	if b.IQR() != 4 {
		t.Errorf("IQR = %v, want 4", b.IQR())
	}
	// Fences at [-3, 13]: all data inside, whiskers at the extremes.
	if b.LoWhisk != 1 || b.HiWhisk != 9 || len(b.Outliers) != 0 {
		t.Errorf("whiskers: %+v", b)
	}
}

func TestNewBoxplotUpperWhiskerInsideFence(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100}
	b, err := NewBoxplot(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Q1=3, Q3=7 → fences [-3, 13]: 100 is an outlier; the upper whisker
	// is the largest value still inside the fence, not the maximum.
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers: %+v", b.Outliers)
	}
	if b.LoWhisk != 1 || b.HiWhisk != 8 {
		t.Errorf("whiskers = (%v, %v), want (1, 8)", b.LoWhisk, b.HiWhisk)
	}
	if s := b.String(); !strings.Contains(s, "n=9") || !strings.Contains(s, "outliers=1") {
		t.Errorf("String() = %q", s)
	}
}

func TestNewBoxplotDegenerate(t *testing.T) {
	// A single observation is its own five-number summary.
	b, err := NewBoxplot([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if b.Median != 42 || b.Q1 != 42 || b.Q3 != 42 || b.LoWhisk != 42 || b.HiWhisk != 42 {
		t.Errorf("singleton: %+v", b)
	}
	// Identical observations: zero IQR, nothing is an outlier.
	b, err = NewBoxplot([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.IQR() != 0 || len(b.Outliers) != 0 || b.LoWhisk != 5 || b.HiWhisk != 5 {
		t.Errorf("constant data: %+v", b)
	}
}

func TestRenderBoxplotsMarkers(t *testing.T) {
	a, _ := NewBoxplot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	c, _ := NewBoxplot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 100})
	out := RenderBoxplots([]string{"FCFS", "F1"}, []Boxplot{a, c}, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // one row per series + the scale row
		t.Fatalf("rendered %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "FCFS") || !strings.HasPrefix(lines[1], "F1") {
		t.Errorf("labels missing:\n%s", out)
	}
	for i, row := range lines[:2] {
		if !strings.Contains(row, "M") {
			t.Errorf("row %d has no median marker:\n%s", i, out)
		}
		if !strings.Contains(row, "med=") {
			t.Errorf("row %d has no median annotation:\n%s", i, out)
		}
	}
	if !strings.Contains(lines[1], "o") {
		t.Errorf("outlier marker missing from second row:\n%s", out)
	}
	if !strings.HasPrefix(lines[2], "scale") {
		t.Errorf("scale row missing:\n%s", out)
	}
}

func TestRenderBoxplotsWidthClamp(t *testing.T) {
	// Width below the minimum is clamped to 20 columns; zero-range data
	// must not divide by zero or render NaNs.
	b, _ := NewBoxplot([]float64{3, 3, 3})
	out := RenderBoxplots([]string{"x"}, []Boxplot{b}, 1)
	if out == "" || strings.Contains(out, "NaN") {
		t.Fatalf("degenerate render: %q", out)
	}
	row := strings.SplitN(out, "\n", 2)[0]
	open := strings.IndexByte(row, '[')
	close_ := strings.IndexByte(row, ']')
	if close_-open-1 != 20 {
		t.Errorf("plot area %d columns, want clamped 20: %q", close_-open-1, row)
	}
}
