// Package stats provides the descriptive statistics the paper's evaluation
// reports: means, medians, quantiles, standard deviations, Tukey boxplot
// summaries (the medians in Table 4 and the boxes and whiskers in Figures
// 4–9), histograms, and small ASCII renderers for terminal output.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty data")

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n), or NaN
// for empty input. The two-pass formulation keeps it numerically stable.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleStdDev returns the sample standard deviation (dividing by n-1).
// It is what the convergence study in Figure 2 measures across repetitions.
func SampleStdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	return StdDev(xs) * math.Sqrt(float64(n)/float64(n-1))
}

// Min returns the smallest element of xs, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the "type 7" estimator used by
// numpy and R, and hence by the paper's matplotlib boxplots). xs need not
// be sorted. It returns NaN for empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile on data that is already sorted ascending.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary bundles the descriptive statistics the artifact's
// sched-performance-tester prints for each experiment.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}
