package analysis

import "strings"

// Zone classifies a package directory by which discipline contracts
// apply to it. The zone table is the single source of truth the
// analyzers consult; DESIGN.md ("Static analysis & determinism
// contracts") documents the same table for humans.
type Zone uint8

const (
	// ZoneDeterministic marks packages inside the determinism boundary:
	// everything that runs between a seed and a metric. detlint,
	// maporder and seedlint apply. Covers the root package and all of
	// internal/ except the exemptions below.
	ZoneDeterministic Zone = 1 << iota

	// ZoneCmd marks user-facing binaries and examples: errlint applies
	// (dropped Write/Close/Flush/Encode errors silently corrupt
	// artifacts users trust).
	ZoneCmd

	// ZoneGoroutineBlessed marks the packages allowed to spawn
	// goroutines inside the determinism boundary: internal/runner (the
	// shared bounded pool) and internal/fed (the shard supervisor), both
	// carrying the same determinism contract — index-addressed results,
	// lowest-index error — which is what makes fan-out safe.
	ZoneGoroutineBlessed
)

// Deterministic reports whether detlint/maporder/seedlint apply.
func (z Zone) Deterministic() bool { return z&ZoneDeterministic != 0 }

// Cmd reports whether errlint applies.
func (z Zone) Cmd() bool { return z&ZoneCmd != 0 }

// GoroutineBlessed reports whether the package may spawn goroutines
// despite being deterministic.
func (z Zone) GoroutineBlessed() bool { return z&ZoneGoroutineBlessed != 0 }

// deterministicExempt lists internal packages outside the determinism
// boundary, with the reason. Everything else under internal/ — the
// scheduling core, the simulators, the trainer/regression stack, the
// workload generators, the adaptive loop — is inside it.
var deterministicExempt = map[string]string{
	// profiling's entire job is wall-clock side effects (pprof file
	// plumbing for cmd/ binaries); nothing on the seed->metric path
	// imports it.
	"internal/profiling": "pprof plumbing is inherently wall-clock",
	// analysis (this package) inspects source, not simulations; it
	// iterates maps from go/types whose order never reaches a
	// simulation output.
	"internal/analysis": "static analysis tooling, not on the seed->metric path",
}

// ZoneOf resolves the discipline zone for a package directory given
// relative to the module root ("" is the root package).
func ZoneOf(rel string) Zone {
	rel = strings.Trim(rel, "/")
	var z Zone
	switch {
	case rel == "":
		// The root gensched package: public Scenario/Grid/Runner API,
		// inside the determinism boundary.
		z |= ZoneDeterministic
	case rel == "internal" || strings.HasPrefix(rel, "internal/"):
		if _, exempt := deterministicExempt[rel]; !exempt {
			z |= ZoneDeterministic
		}
	case rel == "cmd" || strings.HasPrefix(rel, "cmd/"),
		rel == "examples" || strings.HasPrefix(rel, "examples/"):
		z |= ZoneCmd
	}
	if rel == "internal/runner" {
		z |= ZoneGoroutineBlessed
	}
	// internal/fed is the federation layer: deterministic router, wire
	// codec, and N shard engines driven concurrently. It stays inside the
	// determinism boundary — placements are a pure function of the submit
	// stream and merged outputs are (clock, shard, seq)-ordered — and is
	// goroutine-blessed like internal/runner: its shard supervisor
	// (supervisor.go, the package's only spawn site) carries the same
	// shard-owned-state / lowest-index-error contract that keeps the
	// fan-out invisible in every output bit.
	if rel == "internal/fed" {
		z |= ZoneGoroutineBlessed
	}
	// internal/durable owns the daemon's on-disk state (snapshot + WAL).
	// It stays inside the determinism boundary — recovery replay must be
	// bit-reproducible, so no wall clocks or goroutines; fsync batching
	// is record-counted and checkpoint cadence rides the logical clock —
	// and is additionally errlint-checked like a cmd/ package, because a
	// dropped Write/Sync/Close error here silently voids the durability
	// contract the crash-recovery tests pin.
	if rel == "internal/durable" {
		z |= ZoneCmd
	}
	// internal/faultfs is the deterministic fault injector behind the
	// durable-store VFS seam. It stays inside the determinism boundary —
	// fault schedules are pure op-counting (a Plan is a function of seed
	// and stream via dist.Split, firing points are 1-based op indices),
	// so the same schedule trips the same fault at the same record in
	// every run — and is errlint-checked like internal/durable: it wraps
	// the same Write/Sync/Close surface, and a dropped error in the
	// pass-through path would make injected faults silently vanish.
	if rel == "internal/faultfs" {
		z |= ZoneCmd
	}
	// internal/telemetry is the instrumentation layer. It stays inside
	// the determinism boundary — every event rides the logical clock, so
	// no wall clocks, no goroutines, no map-order leaks into exports —
	// and is additionally errlint-checked like a cmd/ package: its
	// JSONL/Chrome-trace/exposition writers produce artifacts operators
	// trust, and a dropped Write error would silently truncate them.
	// (Its one wall-clock-adjacent type, Edge, is handled by a dedicated
	// detlint rule banning the Edge API from deterministic zones.)
	if rel == "internal/telemetry" {
		z |= ZoneCmd
	}
	return z
}
