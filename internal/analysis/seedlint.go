package analysis

import (
	"go/ast"
	"strings"
)

// distPkgSuffix identifies the deterministic-randomness kernel no
// matter what module path the repo is checked out under.
const distPkgSuffix = "internal/dist"

// SeedLint enforces seed-plumbing discipline in deterministic zones:
// every RNG must be constructed from a seed that arrived as data — a
// parameter, a config field, or a dist.Split derivation — never from a
// constant baked into library code. A literal seed deep in the stack
// means two call sites silently share a stream (correlated draws) and
// the upcoming federation sharding cannot re-derive per-shard streams.
// Literal seeds are legitimate only at the top of the funnel (cmd/
// flags, examples, tests), which are outside these zones.
var SeedLint = &Analyzer{
	Name: "seedlint",
	Doc:  "flag RNG construction from constant seeds in deterministic zones; seeds must be parameters or dist.Split derivations",
	Run:  runSeedLint,
}

func runSeedLint(pass *Pass) {
	if !pass.Zone.Deterministic() {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			var fn, seedArg = "", call.Args[0]
			if pkg, name := calleePkgFunc(pass.Info, call); strings.HasSuffix(pkg, distPkgSuffix) && name == "New" {
				fn = "dist.New"
			} else if name, recv, _ := methodInfo(pass.Info, call); name == "Reseed" && recv == "dist.RNG" {
				fn = "(dist.RNG).Reseed"
			}
			if fn == "" {
				return true
			}
			tv, ok := pass.Info.Types[seedArg]
			if !ok || tv.Value == nil {
				return true // not a compile-time constant: plumbed-in seed, fine
			}
			if pass.Allowed(call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(), "%s with constant seed %s in deterministic zone %q: derive the seed with dist.Split from a caller-provided root so streams stay independent and replayable", fn, tv.Value, zoneLabel(pass.RelPath))
			return true
		})
	}
}
