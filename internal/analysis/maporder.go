package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map in deterministic zones. Go
// randomizes map iteration order per run, so any map range whose body
// can leak ordering into output (append order, first-wins selection,
// floating-point accumulation order) breaks bit-identical replay. A
// range that genuinely cannot leak order must say why with a
// `//gensched:orderinvariant <why>` annotation on the statement — the
// justification is the audit trail, and an empty one is itself a
// violation.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration in deterministic zones unless annotated order-invariant with a justification",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !pass.Zone.Deterministic() {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.OrderInvariant(rng.Pos()) {
				return true
			}
			pass.Reportf(rng.Pos(), "map iteration in deterministic zone %q: iterate a sorted key slice, or annotate the statement //gensched:orderinvariant <why> if order provably cannot leak into output", zoneLabel(pass.RelPath))
			return true
		})
	}
}
