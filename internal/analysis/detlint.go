package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallClockFuncs are the time-package functions that read or wait on
// the wall clock. Inside the determinism boundary every instant comes
// from the engine's logical clock; a single wall-clock read makes a
// replay diverge from the run it is supposed to reproduce.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// envFuncs are the os-package functions that make behavior depend on
// the process environment — state a replayed seed does not capture.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// telemetryPkgSuffix identifies the instrumentation layer no matter
// what module path the repo is checked out under.
const telemetryPkgSuffix = "internal/telemetry"

// DetLint enforces the determinism boundary: in deterministic zones it
// forbids wall-clock reads (time.Now/Since/...), any use of math/rand
// (all randomness flows through internal/dist so streams split and
// replay), environment-dependent logic (os.Getenv/...), and goroutine
// spawns outside the blessed internal/runner pool (ad-hoc goroutines
// make results depend on scheduling order; the pool's index-addressed
// contract does not).
// DetLint also quarantines the telemetry package's one wall-clock-fed
// type: telemetry.Edge exists to hold latencies a daemon measured at
// its HTTP boundary, so constructing or feeding one inside the
// determinism boundary means a wall-clock quantity is flowing where
// only logical-clock quantities belong. The rest of the telemetry API
// (Sink, Counter, Histogram, Tracer) is logical-clock only and legal
// everywhere.
var DetLint = &Analyzer{
	Name: "detlint",
	Doc:  "forbid wall clocks, global math/rand, env-dependent logic, unblessed goroutines and the wall-clock telemetry Edge API in deterministic zones",
	Run:  runDetLint,
}

func runDetLint(pass *Pass) {
	if !pass.Zone.Deterministic() {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := importPath(imp)
			if path == "math/rand" || path == "math/rand/v2" {
				if !pass.Allowed(imp.Pos()) {
					pass.Reportf(imp.Pos(), "import of %s in deterministic zone %q: all randomness must flow through internal/dist so seeds split and replays are bit-identical", path, zoneLabel(pass.RelPath))
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !pass.Zone.GoroutineBlessed() && !pass.Allowed(n.Pos()) {
					pass.Reportf(n.Pos(), "goroutine spawn in deterministic zone %q: fan out through the internal/runner pool, whose index-addressed results and lowest-index-error contract keep output independent of scheduling order", zoneLabel(pass.RelPath))
				}
			case *ast.CallExpr:
				pkg, name := calleePkgFunc(pass.Info, n)
				switch {
				case pkg == "time" && wallClockFuncs[name]:
					if !pass.Allowed(n.Pos()) {
						pass.Reportf(n.Pos(), "time.%s in deterministic zone %q: instants must come from the engine's logical clock, never the wall clock", name, zoneLabel(pass.RelPath))
					}
				case pkg == "os" && envFuncs[name]:
					if !pass.Allowed(n.Pos()) {
						pass.Reportf(n.Pos(), "os.%s in deterministic zone %q: behavior must be a function of explicit configuration and the seed, not the process environment", name, zoneLabel(pass.RelPath))
					}
				case strings.HasSuffix(pkg, telemetryPkgSuffix) && name == "NewEdge":
					if !pass.Allowed(n.Pos()) {
						pass.Reportf(n.Pos(), "telemetry.NewEdge in deterministic zone %q: Edge holds wall-clock latencies measured at the daemon's HTTP boundary and is banned inside the determinism boundary; use the logical-clock Sink API instead", zoneLabel(pass.RelPath))
					}
				default:
					if name, recv, _ := methodInfo(pass.Info, n); recv == "telemetry.Edge" && !pass.Allowed(n.Pos()) {
						pass.Reportf(n.Pos(), "(telemetry.Edge).%s in deterministic zone %q: Edge carries wall-clock latencies and is banned inside the determinism boundary; use the logical-clock Sink API instead", name, zoneLabel(pass.RelPath))
					}
				}
			}
			return true
		})
	}
}

// importPath returns the unquoted import path of spec.
func importPath(spec *ast.ImportSpec) string {
	p := spec.Path.Value
	if len(p) >= 2 {
		return p[1 : len(p)-1]
	}
	return p
}

// zoneLabel renders the package's zone path for messages ("." for the
// module root).
func zoneLabel(rel string) string {
	if rel == "" {
		return "."
	}
	return rel
}

// calleePkgFunc resolves a call of the form pkg.Func to its package
// path and function name; ("", "") for anything else (methods, locals,
// conversions). Resolution goes through the type checker's Uses map, so
// a local variable shadowing a package name cannot fake a match.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
