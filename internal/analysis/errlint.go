package analysis

import (
	"go/ast"
	"go/types"
)

// errProneMethods are the output-path methods whose error return is the
// only signal that an artifact a user trusts (a trace file, a results
// JSON, an HTTP response body) was actually persisted intact.
var errProneMethods = map[string]bool{
	"Write": true, "WriteString": true, "Close": true,
	"Flush": true, "Encode": true, "Sync": true,
}

// infallibleRecvs are receiver types whose output methods are
// documented to always return a nil error; checking them is noise.
var infallibleRecvs = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

// ErrLint flags dropped errors on Write/WriteString/Close/Flush/Encode/
// Sync calls in cmd/ and examples/ — the binaries whose whole purpose
// is producing artifacts, where a swallowed short write silently ships
// a truncated file. Policy (the PR 3 cmd audit, generalized): the
// success path must check these errors; error-cleanup paths discard
// explicitly with `_ =` so intent is visible; `defer x.Close()` is
// permitted only as last-resort cleanup because the success path is
// required to check an explicit Close separately.
var ErrLint = &Analyzer{
	Name: "errlint",
	Doc:  "flag dropped errors on output-path calls (Write/Close/Flush/Encode/...) in cmd/ and examples/",
	Run:  runErrLint,
}

func runErrLint(pass *Pass) {
	if !pass.Zone.Cmd() {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			deferred := false
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call, deferred = n.Call, true
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			name, recv, returnsErr := methodInfo(pass.Info, call)
			if !errProneMethods[name] || !returnsErr || infallibleRecvs[recv] {
				return true
			}
			if deferred && name == "Close" {
				// Deferred Close is the last-resort cleanup path; the
				// audit requires the success path to check an explicit
				// Close, which this analyzer still enforces.
				return true
			}
			if pass.Allowed(call.Pos()) {
				return true
			}
			what := name
			if recv != "" {
				what = "(" + recv + ")." + name
			}
			pass.Reportf(call.Pos(), "dropped error from %s: check it on the success path, or discard explicitly with `_ =` on cleanup paths", what)
			return true
		})
	}
}

// methodInfo resolves a method call to (method name, printable receiver
// type, whether its results include an error). Non-method calls and
// calls whose type the checker could not resolve return ("", "", false).
func methodInfo(info *types.Info, call *ast.CallExpr) (name, recv string, returnsErr bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	sig, ok := selection.Type().(*types.Signature)
	if !ok {
		return "", "", false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			returnsErr = true
			break
		}
	}
	return sel.Sel.Name, namedRecv(selection.Recv()), returnsErr
}

// namedRecv renders the receiver's named type as "pkg.Type" (path
// shortened to the last element), or "" when anonymous.
func namedRecv(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
