package analysis

import (
	"bufio"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureCases maps each golden fixture under testdata/src to the
// analyzer it exercises and the module-relative package path whose zone
// it is checked under. Every fixture seeds at least one violation the
// analyzer must catch (asserted by `// want "substr"` comments) and at
// least one negative case that must stay silent.
var fixtureCases = []struct {
	dir      string
	analyzer *Analyzer
	zone     string
}{
	{"detlint", DetLint, "internal/fixture"},
	{"detlint_blessed", DetLint, "internal/runner"},
	{"detlint_edge", DetLint, "internal/fixture"},
	{"maporder", MapOrder, "internal/fixture"},
	{"errlint", ErrLint, "cmd/fixture"},
	{"seedlint", SeedLint, "internal/fixture"},
}

func TestFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			pkg := loadFixture(t, dir, tc.zone)
			diags := Run([]*Package{pkg}, []*Analyzer{tc.analyzer})
			diffWants(t, dir, diags)
		})
	}
}

// One fileset+importer shared by every fixture load: the source
// importer caches type-checked dependencies, so the stdlib packages the
// fixtures import are checked once per test run, not once per fixture.
var (
	fixtureFset = token.NewFileSet()
	fixtureImp  = importer.ForCompiler(fixtureFset, "source", nil)
)

// loadFixture parses and type-checks one testdata package under the
// given assumed zone path.
func loadFixture(t *testing.T, dir, zone string) *Package {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := fixtureFset
	var files []*ast.File
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	pkg, err := Check(fset, fixtureImp, dir, zone, files)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// diffWants compares reported diagnostics against the fixture's
// `// want "substr"` expectation comments: every want must be matched
// by a diagnostic on its line (message substring match), and every
// diagnostic must be claimed by a want.
func diffWants(t *testing.T, dir string, diags []Diagnostic) {
	t.Helper()
	type want struct {
		file    string
		line    int
		substr  string
		matched bool
	}
	var wants []*want
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &want{file: path, line: line, substr: m[1]})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		_ = f.Close() // opened read-only
	}
	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.File && w.line == d.Line && strings.Contains(d.Message, w.substr) {
				w.matched, claimed = true, true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.substr)
		}
	}
}

// TestZoneGating pins that analyzers are inert outside their zones: the
// detlint fixture, full of wall clocks and spawns, draws nothing when
// checked as an exempt package, and the errlint fixture's dropped
// errors draw nothing outside cmd/ and examples/.
func TestZoneGating(t *testing.T) {
	det := loadFixture(t, filepath.Join("testdata", "src", "detlint"), "internal/profiling")
	if diags := Run([]*Package{det}, []*Analyzer{DetLint, MapOrder, SeedLint}); len(diags) > 0 {
		t.Errorf("exempt zone drew %d diagnostics, want 0; first: %s", len(diags), diags[0])
	}
	errf := loadFixture(t, filepath.Join("testdata", "src", "errlint"), "internal/fixture")
	if diags := Run([]*Package{errf}, []*Analyzer{ErrLint}); len(diags) > 0 {
		t.Errorf("errlint outside cmd/ drew %d diagnostics, want 0; first: %s", len(diags), diags[0])
	}
}

func TestZoneOf(t *testing.T) {
	cases := []struct {
		rel  string
		det  bool
		cmd  bool
		goOK bool
	}{
		{"", true, false, false},
		{"internal/schedcore", true, false, false},
		{"internal/online", true, false, false},
		{"internal/dist", true, false, false},
		{"internal/adaptive", true, false, false},
		{"internal/runner", true, false, true},
		{"internal/durable", true, true, false},
		{"internal/faultfs", true, true, false},
		{"internal/telemetry", true, true, false},
		{"internal/profiling", false, false, false},
		{"internal/analysis", false, false, false},
		{"cmd/schedd", false, true, false},
		{"cmd/genschedvet", false, true, false},
		{"examples/quickstart", false, true, false},
	}
	for _, c := range cases {
		z := ZoneOf(c.rel)
		if z.Deterministic() != c.det || z.Cmd() != c.cmd || z.GoroutineBlessed() != c.goOK {
			t.Errorf("ZoneOf(%q) = det %v, cmd %v, goroutines %v; want %v, %v, %v",
				c.rel, z.Deterministic(), z.Cmd(), z.GoroutineBlessed(), c.det, c.cmd, c.goOK)
		}
	}
}

// TestRepoClean is the self-gate: the analyzer suite must exit clean on
// the repository's own tree, so every contract the suite enforces holds
// everywhere, and CI's `go run ./cmd/genschedvet ./...` step matches.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; the non-short run and the genschedvet CI gate cover it")
	}
	pkgs, err := Load(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages — the walker is missing the tree", len(pkgs))
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("%s", d)
	}
}
