// Package seedlint is a seeded-violation fixture for the seed-plumbing
// analyzer: RNG construction from a constant must be flagged, while
// seeds that arrive as data (parameters, dist.Split derivations) pass.
package seedlint

import "github.com/hpcsched/gensched/internal/dist"

const baked = 42

func literal() *dist.RNG {
	return dist.New(1234) // want "constant seed"
}

func constant() *dist.RNG {
	return dist.New(baked) // want "constant seed"
}

func plumbed(seed uint64) *dist.RNG {
	return dist.New(seed)
}

func split(seed uint64) *dist.RNG {
	return dist.New(dist.Split(seed, 7))
}

func reseed(r *dist.RNG) {
	r.Reseed(99) // want "constant seed"
}
