// Package errlint is a seeded-violation fixture for the dropped-error
// analyzer, checked under a cmd/ zone: bare output-path calls must be
// flagged, while checked errors, explicit `_ =` discards, deferred
// Close cleanup, and infallible writers (strings.Builder) must pass.
package errlint

import (
	"encoding/json"
	"os"
	"strings"
)

func dropped(f *os.File, enc *json.Encoder, v any) {
	f.Write([]byte("x")) // want "dropped error from (os.File).Write"
	enc.Encode(v)        // want "dropped error from (json.Encoder).Encode"
	f.Close()            // want "dropped error from (os.File).Close"
}

func checked(f *os.File) error {
	defer f.Close() // last-resort cleanup: the success path checks below
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	_ = f.Sync() // explicit discard
	return f.Close()
}

func infallible(parts []string) string {
	var b strings.Builder
	b.WriteString("a")
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}

func allowed(f *os.File) {
	//gensched:allow errlint fixture demonstrating the escape hatch on a cleanup path
	f.Close()
}
