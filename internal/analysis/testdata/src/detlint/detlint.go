// Package detlint is a seeded-violation fixture: checked under a
// deterministic zone, every `// want` line must draw exactly that
// detlint diagnostic and every unmarked line must stay silent.
package detlint

import (
	"math/rand" // want "import of math/rand"
	"os"
	"time"
)

func wallClock() (time.Time, float64) {
	start := time.Now()          // want "time.Now"
	elapsed := time.Since(start) // want "time.Since"
	return start, elapsed.Seconds()
}

func globalRand() int { return rand.Intn(10) }

func envDependent() string {
	return os.Getenv("GENSCHED_MODE") // want "os.Getenv"
}

func spawn(ch chan int) {
	go func() { ch <- 1 }() // want "goroutine spawn"
}

func allowedSpawn(ch chan int) {
	//gensched:allow detlint fixture of a justified exception; results are index-addressed
	go func() { ch <- 2 }()
}

func emptyJustification(ch chan int) {
	//gensched:allow detlint
	go func() { ch <- 3 }() // want "without a justification"
}
