// Package detlint_edge is a seeded-violation fixture for the detlint
// Edge quarantine: constructing or feeding the wall-clock telemetry
// Edge inside a deterministic zone must be flagged, while the
// logical-clock Sink API passes.
package detlint_edge

import "github.com/hpcsched/gensched/internal/telemetry"

func construct() *telemetry.Edge {
	return telemetry.NewEdge("submit", "complete") // want "telemetry.NewEdge"
}

func feed(e *telemetry.Edge) {
	e.Observe("submit", 0.25) // want "telemetry.Edge"
}

func export(e *telemetry.Edge, w *telemetry.ExpositionWriter) {
	e.WriteExposition(w) // want "telemetry.Edge"
}

// The logical-clock Sink API is legal everywhere in the boundary: it
// must draw no diagnostics.
func sink(s *telemetry.Sink) {
	s.JobSubmitted(100, 1)
	s.JobStarted(130, 1, 30, false)
	s.JobCompleted(250, 1, 30, 1.5)
	var h telemetry.Histogram
	h.Observe(30)
}

// An annotated call site is exempt, like every detlint rule.
func blessed() *telemetry.Edge {
	//gensched:allow detlint fixture exercises the escape hatch
	return telemetry.NewEdge("submit")
}
