// Package blessed is checked under the internal/runner zone: goroutine
// spawns are the pool's whole job and pass, but the wall clock is still
// forbidden there.
package blessed

import "time"

func spawn(ch chan int) {
	go func() { ch <- 1 }()
}

func wallClock() int64 {
	return time.Now().Unix() // want "time.Now"
}
