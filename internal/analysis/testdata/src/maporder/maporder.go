// Package maporder is a seeded-violation fixture for the map-iteration
// analyzer: an unannotated map range must be flagged, a justified
// //gensched:orderinvariant annotation must pass, an unjustified one is
// its own violation, and slice ranges are never flagged.
package maporder

import "sort"

func leaky(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration"
		keys = append(keys, k)
	}
	return keys
}

func sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//gensched:orderinvariant keys are accumulated and sorted before any consumer sees them
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unjustified(m map[string]int) int {
	n := 0
	//gensched:orderinvariant
	for range m { // want "without a justification"
		n++
	}
	return n
}

func slices(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
