package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Dir     string // absolute directory
	RelPath string // directory relative to the module root ("" = root)
	Zone    Zone
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// ModuleRoot walks upward from dir to the directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Load resolves the given package patterns against the module rooted at
// or above dir and returns every matched package parsed and
// type-checked. Patterns follow the go tool's shape: "./..." (all
// packages), "./sub/..." (a subtree), or "./sub" (one directory).
// Directories named testdata or vendor, and directories whose name
// starts with "." or "_", are skipped — exactly the dirs the go tool
// ignores, which is what keeps the seeded-violation fixtures under
// internal/analysis/testdata out of the repo-wide run.
func Load(dir string, patterns []string) ([]*Package, error) {
	root, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// One source importer shared across every target package: it
	// type-checks dependencies from source and caches them, so the
	// module's internal packages are checked once, not once per
	// importer.
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := loadDir(fset, imp, root, d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// expand turns patterns into a sorted list of absolute package dirs.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loadDir parses and type-checks one directory; returns (nil, nil) if
// it holds no non-test Go files.
func loadDir(fset *token.FileSet, imp types.Importer, root, dir string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, noGo := err.(*build.NoGoError); noGo {
			return nil, nil
		}
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	return Check(fset, imp, dir, rel, files)
}

// Check type-checks the parsed files as one package rooted at rel and
// wraps them as a Package. Split out of loadDir so the fixture harness
// can load testdata packages under an assumed zone path.
func Check(fset *token.FileSet, imp types.Importer, dir, rel string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(dir, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s:\n  %s", dir, strings.Join(typeErrs, "\n  "))
	}
	return &Package{
		Dir:     dir,
		RelPath: rel,
		Zone:    ZoneOf(rel),
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
