// Package analysis is gensched's project-specific static-analysis
// driver: a pure-stdlib (go/ast, go/parser, go/token, go/types) harness
// that loads the module's packages, type-checks them, and runs the
// determinism-and-discipline analyzers over every file. It exists
// because the repository's guarantees — bit-identical batch/online/
// adaptive replays, worker-count invariance, seed-splitting discipline —
// are structural properties of the source, and the differential tests
// that pin them only catch violations after they ship. The analyzers
// reject them by construction.
//
// The driver is deliberately self-contained: it walks package
// directories itself, resolves imports with the stdlib source importer,
// and depends on nothing outside the standard library, so `go run
// ./cmd/genschedvet ./...` works on a bare toolchain and in CI with no
// extra modules.
//
// Escape hatches are explicit and audited: a violating line may carry a
// `//gensched:allow <analyzer> <justification>` comment (same line or
// the line above), and map iteration in a deterministic zone may carry
// `//gensched:orderinvariant <justification>`. A directive without a
// justification is itself a diagnostic — the annotation IS the audit
// trail.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, addressable as file:line:col.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the go-vet-style human form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full suite in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{DetLint, MapOrder, ErrLint, SeedLint}
}

// Pass carries one type-checked package through one analyzer. Analyzers
// call Reportf for findings and Allowed/OrderInvariant to honor the
// escape-hatch directives.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// RelPath is the package directory relative to the module root
	// ("" for the root package, "internal/sim", "cmd/schedd", ...).
	// Zone membership is decided from it.
	RelPath string

	// Zone is the resolved discipline zone for RelPath (see zones.go).
	Zone Zone

	directives map[string][]directive // file name -> sorted by line
	report     func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //gensched:NAME comment.
type directive struct {
	line int    // line the comment appears on
	name string // "allow", "orderinvariant", ...
	args string // remainder of the comment, trimmed
}

// DirectivePrefix introduces every escape-hatch comment.
const DirectivePrefix = "//gensched:"

// parseDirectives indexes every //gensched: comment in the file by line
// so directive lookup during the walk is O(log n).
func parseDirectives(fset *token.FileSet, file *ast.File) []directive {
	var out []directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, DirectivePrefix)
			name, args, _ := strings.Cut(rest, " ")
			out = append(out, directive{
				line: fset.Position(c.Pos()).Line,
				name: strings.TrimSpace(name),
				args: strings.TrimSpace(args),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].line < out[j].line })
	return out
}

// directiveAt finds a directive with the given name on the line of pos
// or the line directly above it — the two placements the policy allows,
// so a justification always sits next to the code it excuses.
func (p *Pass) directiveAt(pos token.Pos, name string) (directive, bool) {
	position := p.Fset.Position(pos)
	for _, d := range p.directives[position.Filename] {
		if d.name != name {
			continue
		}
		if d.line == position.Line || d.line == position.Line-1 {
			return d, true
		}
	}
	return directive{}, false
}

// Allowed reports whether pos carries a `//gensched:allow <analyzer>
// <justification>` escape hatch for the running analyzer. An allow
// without a justification does not excuse anything; the analyzer
// reports it as its own violation so the audit trail cannot erode.
func (p *Pass) Allowed(pos token.Pos) bool {
	d, ok := p.directiveAt(pos, "allow")
	if !ok {
		return false
	}
	target, why, _ := strings.Cut(d.args, " ")
	if target != p.Analyzer.Name {
		return false
	}
	if strings.TrimSpace(why) == "" {
		p.Reportf(pos, "gensched:allow %s without a justification — state why the exception is sound", p.Analyzer.Name)
		return true // suppress the underlying finding; the empty hatch is the finding
	}
	return true
}

// OrderInvariant reports whether pos carries a justified
// `//gensched:orderinvariant <why>` annotation (maporder's dedicated
// escape hatch). Like Allowed, an empty justification is a violation.
func (p *Pass) OrderInvariant(pos token.Pos) bool {
	d, ok := p.directiveAt(pos, "orderinvariant")
	if !ok {
		return false
	}
	if d.args == "" {
		p.Reportf(pos, "gensched:orderinvariant without a justification — state why iteration order cannot leak into output")
		return true
	}
	return true
}

// Run executes every analyzer over every loaded package and returns the
// findings sorted by file, line, column, analyzer — a stable order for
// diffing and for the fixture harness.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		directives := make(map[string][]directive, len(pkg.Files))
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			directives[name] = parseDirectives(pkg.Fset, f)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				RelPath:    pkg.RelPath,
				Zone:       pkg.Zone,
				directives: directives,
				report:     func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
