package sched

import (
	"math"
	"testing"
	"testing/quick"
)

func view(r, n, s, w float64) JobView {
	return JobView{Runtime: r, Cores: n, Submit: s, Wait: w}
}

func TestFCFSOrdersByArrival(t *testing.T) {
	p := FCFS()
	if p.Score(view(1, 1, 100, 0)) >= p.Score(view(1e6, 256, 200, 0)) {
		t.Error("FCFS must prefer earlier arrivals regardless of size")
	}
	if p.TimeVarying() {
		t.Error("FCFS is not time-varying")
	}
}

func TestSPTOrdersByRuntime(t *testing.T) {
	p := SPT()
	if p.Score(view(10, 256, 999, 0)) >= p.Score(view(1000, 1, 0, 0)) {
		t.Error("SPT must prefer shorter tasks")
	}
}

func TestLPTIsReverseSPT(t *testing.T) {
	spt, lpt := SPT(), LPT()
	a, b := view(10, 1, 0, 0), view(500, 1, 0, 0)
	if (spt.Score(a) < spt.Score(b)) == (lpt.Score(a) < lpt.Score(b)) {
		t.Error("LPT must reverse SPT's preference")
	}
}

func TestSAFOrdersByArea(t *testing.T) {
	p := SAF()
	if p.Score(view(10, 10, 0, 0)) >= p.Score(view(1000, 10, 0, 0)) {
		t.Error("SAF must prefer smaller area")
	}
	if p.Score(view(10, 2, 0, 0)) >= p.Score(view(10, 200, 0, 0)) {
		t.Error("SAF must prefer fewer cores at equal runtime")
	}
}

func TestWFP3AgingAndShape(t *testing.T) {
	p := WFP3()
	if !p.TimeVarying() {
		t.Error("WFP3 depends on waiting time")
	}
	// Longer wait => lower (better) score.
	if p.Score(view(100, 4, 0, 1000)) >= p.Score(view(100, 4, 0, 10)) {
		t.Error("WFP3 must favor tasks that waited longer")
	}
	// At equal wait/runtime ratio, more cores => better score (anti-starvation
	// of large tasks, per Tang et al.).
	if p.Score(view(100, 64, 0, 500)) >= p.Score(view(100, 2, 0, 500)) {
		t.Error("WFP3 must favor larger tasks at equal w/r")
	}
	// Zero wait gives the neutral score 0.
	if got := p.Score(view(100, 64, 0, 0)); got != 0 {
		t.Errorf("WFP3 zero-wait score = %v, want 0", got)
	}
}

func TestUNICEFShape(t *testing.T) {
	p := UNICEF()
	// Favors long-waiting tasks.
	if p.Score(view(100, 4, 0, 1000)) >= p.Score(view(100, 4, 0, 10)) {
		t.Error("UNICEF must favor tasks that waited longer")
	}
	// Favors small tasks: smaller r·log2(n) divisor strengthens -w/x.
	if p.Score(view(10, 2, 0, 100)) >= p.Score(view(10000, 2, 0, 100)) {
		t.Error("UNICEF must favor shorter tasks at equal wait")
	}
	// Serial task does not blow up.
	if got := p.Score(view(10, 1, 0, 100)); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("UNICEF serial score = %v, want finite", got)
	}
}

func TestLearnedPoliciesPreferSmallEarly(t *testing.T) {
	for _, p := range []Policy{F1(), F2(), F3(), F4()} {
		if p.TimeVarying() {
			t.Errorf("%s must not be time-varying", p.Name())
		}
		if p.Score(view(10, 4, 100, 0)) >= p.Score(view(10000, 4, 100, 0)) {
			t.Errorf("%s must prefer shorter tasks", p.Name())
		}
		if p.Score(view(10, 2, 100, 0)) >= p.Score(view(10, 200, 100, 0)) {
			t.Errorf("%s must prefer smaller tasks", p.Name())
		}
		if p.Score(view(10, 4, 10, 0)) >= p.Score(view(10, 4, 10000, 0)) {
			t.Errorf("%s must prefer earlier submissions", p.Name())
		}
	}
}

func TestF1DominatedBySubmitTime(t *testing.T) {
	// The paper stresses the large constant before log10(s): a modest
	// difference in arrival time outweighs a huge size difference.
	p := F1()
	early := view(27000, 256, 100, 0) // big but early
	late := view(10, 1, 10000, 0)     // tiny but much later
	if p.Score(early) >= p.Score(late) {
		t.Error("F1's log10(s) term must dominate for large arrival gaps")
	}
}

func TestMultifactor(t *testing.T) {
	p := Multifactor(MultifactorWeights{Age: 1, Size: 100, Short: 1000, MachineCores: 256})
	if !p.TimeVarying() {
		t.Error("multifactor with age weight is time-varying")
	}
	// Older job wins with pure-age weights.
	age := Multifactor(MultifactorWeights{Age: 1, MachineCores: 256})
	if age.Score(view(10, 1, 0, 100)) >= age.Score(view(10, 1, 0, 1)) {
		t.Error("age factor must favor older jobs")
	}
	// Smaller job wins with pure-size weights.
	size := Multifactor(MultifactorWeights{Size: 1, MachineCores: 256})
	if size.Score(view(10, 1, 0, 0)) >= size.Score(view(10, 256, 0, 0)) {
		t.Error("size factor must favor smaller jobs")
	}
	if size.TimeVarying() {
		t.Error("multifactor without age weight is not time-varying")
	}
}

func TestFixedOrder(t *testing.T) {
	p := FixedOrder(map[int]int{7: 0, 3: 1, 9: 2})
	v := view(1, 1, 50, 0)
	if p.ScoreID(7, v) >= p.ScoreID(3, v) || p.ScoreID(3, v) >= p.ScoreID(9, v) {
		t.Error("FixedOrder must order by rank")
	}
	// Unknown IDs sort after known ones.
	if p.ScoreID(42, v) <= p.ScoreID(9, v) {
		t.Error("unknown IDs must sort last")
	}
}

func TestRegistryOrderMatchesFigures(t *testing.T) {
	want := []string{"FCFS", "WFP3", "UNICEF", "SPT", "F4", "F3", "F2", "F1"}
	got := Names(Registry())
	if len(got) != len(want) {
		t.Fatalf("registry has %d policies, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"FCFS", "SPT", "WFP3", "UNICEF", "F1", "F2", "F3", "F4", "LPT", "SAF", "WFP", "UNI", "EASY"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSortQueueDeterministicTieBreak(t *testing.T) {
	p := New("CONST", false, func(JobView) float64 { return 1 })
	ids := []int{5, 2, 9, 1}
	views := []JobView{view(1, 1, 30, 0), view(1, 1, 10, 0), view(1, 1, 10, 0), view(1, 1, 20, 0)}
	SortQueue(p, ids, views)
	// All scores equal: order by (submit, id) = (10,2),(10,9),(20,1),(30,5).
	want := []int{2, 9, 1, 5}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestSortQueueUsesFixedOrderIDs(t *testing.T) {
	p := FixedOrder(map[int]int{1: 2, 2: 0, 3: 1})
	ids := []int{1, 2, 3}
	views := []JobView{view(1, 1, 0, 0), view(1, 1, 0, 0), view(1, 1, 0, 0)}
	SortQueue(p, ids, views)
	if ids[0] != 2 || ids[1] != 3 || ids[2] != 1 {
		t.Fatalf("ids = %v, want [2 3 1]", ids)
	}
}

func TestSortQueueSortedProperty(t *testing.T) {
	p := SPT()
	if err := quick.Check(func(runtimes []float64) bool {
		ids := make([]int, 0, len(runtimes))
		views := make([]JobView, 0, len(runtimes))
		for i, r := range runtimes {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				continue
			}
			ids = append(ids, i)
			views = append(views, view(math.Abs(math.Mod(r, 1e6)), 1, float64(i), 0))
		}
		SortQueue(p, ids, views)
		for i := 1; i < len(views); i++ {
			if views[i-1].Runtime > views[i].Runtime {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}
