// Package sched defines the scheduling-policy abstraction the paper's
// on-line scheduler plugs into, plus every policy the evaluation compares:
// the classical FCFS and SPT, the "smart ad-hoc" WFP3 and UNICEF of Tang et
// al. (Table 2), the learned nonlinear policies F1–F4 (Table 3), and a few
// extras (LPT, SAF, a SLURM-style multifactor policy, expression-backed
// policies produced by the regression pipeline).
//
// A policy maps a waiting task to a score; the scheduler sorts the queue by
// ascending score, so lower scores run first.
package sched

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpcsched/gensched/internal/expr"
)

// JobView is what a policy is allowed to see about a waiting task. Runtime
// is the *perceived* processing time: the actual runtime r in
// actual-runtime experiments, or the user estimate e in estimate
// experiments. The simulator fills it in; policies cannot tell the
// difference, which is exactly the paper's evaluation condition.
type JobView struct {
	Runtime float64 // perceived processing time (r or e)
	Cores   float64 // requested cores n
	Submit  float64 // arrival time s
	Wait    float64 // now - Submit (>= 0)
}

// Policy assigns scores to waiting tasks; the queue is sorted by ascending
// score at every rescheduling event. Implementations must be safe for
// concurrent use: the experiment harness shares one Policy value across
// simulations running in parallel (every built-in policy is stateless).
type Policy interface {
	// Name identifies the policy in reports ("FCFS", "F1", ...).
	Name() string
	// Score returns the priority value of a task; lower runs first.
	Score(v JobView) float64
	// TimeVarying reports whether Score depends on Wait. The simulator
	// skips re-sorting between arrivals for policies that are stable in
	// time (FCFS, SPT, F1–F4), an optimization the semantics allow
	// because relative order of a fixed queue cannot change.
	TimeVarying() bool
}

// fnPolicy adapts a plain function to the Policy interface.
type fnPolicy struct {
	name        string
	timeVarying bool
	score       func(JobView) float64
}

func (p fnPolicy) Name() string            { return p.name }
func (p fnPolicy) Score(v JobView) float64 { return p.score(v) }
func (p fnPolicy) TimeVarying() bool       { return p.timeVarying }

// New wraps a score function as a Policy.
func New(name string, timeVarying bool, score func(JobView) float64) Policy {
	return fnPolicy{name: name, timeVarying: timeVarying, score: score}
}

// FCFS schedules by arrival order: score(t) = s_t (Table 2).
func FCFS() Policy {
	return New("FCFS", false, func(v JobView) float64 { return v.Submit })
}

// SPT (shortest processing time first): score(t) = r_t (Table 2).
func SPT() Policy {
	return New("SPT", false, func(v JobView) float64 { return v.Runtime })
}

// LPT (longest processing time first), the classical counterpart of SPT;
// included as an additional baseline.
func LPT() Policy {
	return New("LPT", false, func(v JobView) float64 { return -v.Runtime })
}

// SAF (smallest area first) favors tasks with the smallest r·n footprint;
// a natural extension baseline the paper's weighting argument suggests.
func SAF() Policy {
	return New("SAF", false, func(v JobView) float64 { return v.Runtime * v.Cores })
}

// WFP3 is Tang et al.'s policy (Table 2): score(t) = −(w_t/r_t)³·n_t.
// Aging through w_t favors tasks that waited long relative to their
// length, while the n_t factor keeps large tasks from starving.
func WFP3() Policy {
	return New("WFP3", true, func(v JobView) float64 {
		r := math.Max(v.Runtime, 1)
		x := v.Wait / r
		return -(x * x * x) * v.Cores
	})
}

// UNICEF is Tang et al.'s policy (Table 2): score(t) = −w_t/(log₂(n_t)·r_t),
// giving fast turnaround to small tasks. log₂ is clamped at n=2 to avoid
// the singularity for serial tasks (log₂(1) = 0).
func UNICEF() Policy {
	return New("UNICEF", true, func(v JobView) float64 {
		r := math.Max(v.Runtime, 1)
		n := math.Max(v.Cores, 2)
		return -v.Wait / (math.Log2(n) * r)
	})
}

// Expr wraps a fitted nonlinear function f(r, n, s) as a policy. This is
// how the output of the regression pipeline becomes a scheduler. The
// function is compiled once at wrap time (expr.Func.Compile, bit-identical
// to Eval by contract), so queue re-ranks, SetPolicy hot-swaps and shadow
// twins score jobs without walking the expression tree.
func Expr(name string, f expr.Func) Policy {
	eval := f.Compile()
	return New(name, false, func(v JobView) float64 {
		return eval(v.Runtime, v.Cores, v.Submit)
	})
}

// ParseExpr builds a policy from the compact textual form of a function,
// e.g. "log10(r)*n + 870*log10(s)" — the syntax the regression tools print
// — so fitted policies can be deployed from configuration strings.
func ParseExpr(name, src string) (Policy, error) {
	f, err := expr.Parse(src)
	if err != nil {
		return nil, err
	}
	return Expr(name, f), nil
}

// The four Table 3 policies, with the paper's published coefficients. The
// processing-time argument is the perceived runtime, so the same constants
// serve the actual-runtime and user-estimate experiments, as in §4.2.

// F1: score = log10(r)·n + 8.70·10²·log10(s).
func F1() Policy {
	return Expr("F1", expr.Func{
		Form: expr.Form{A: expr.BaseLog, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd},
		C:    [3]float64{1, 1, 8.70e2},
	})
}

// F2: score = √r·n + 2.56·10⁴·log10(s).
func F2() Policy {
	return Expr("F2", expr.Func{
		Form: expr.Form{A: expr.BaseSqrt, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd},
		C:    [3]float64{1, 1, 2.56e4},
	})
}

// F3: score = r·n + 6.86·10⁶·log10(s).
func F3() Policy {
	return Expr("F3", expr.Func{
		Form: expr.Form{A: expr.BaseID, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd},
		C:    [3]float64{1, 1, 6.86e6},
	})
}

// F4: score = r·√n + 5.30·10⁵·log10(s).
func F4() Policy {
	return Expr("F4", expr.Func{
		Form: expr.Form{A: expr.BaseID, B: expr.BaseSqrt, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd},
		C:    [3]float64{1, 1, 5.30e5},
	})
}

// Random is a seeded random-order baseline: each task gets a stable
// pseudo-random score derived from its identity witin the run. It brackets
// the policy comparison from below — any reasonable policy must beat it —
// and is deterministic for reproducible experiments.
func Random(seed uint64) Policy {
	return randomPolicy{seed: seed}
}

type randomPolicy struct{ seed uint64 }

func (r randomPolicy) Name() string      { return "RANDOM" }
func (r randomPolicy) TimeVarying() bool { return false }
func (r randomPolicy) Score(v JobView) float64 {
	// Hash the (submit, cores, runtime) identity into a stable score.
	h := r.seed
	for _, f := range []float64{v.Submit, v.Cores, v.Runtime} {
		h ^= math.Float64bits(f) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	return float64(h%1e9) / 1e9
}

// MultifactorWeights parameterizes a SLURM-style multifactor priority
// policy: a linear combination of priority factors whose coefficients the
// platform maintainer tunes (§2 describes this as what production systems
// deploy). Larger weighted priority means running earlier, so Score
// negates it.
type MultifactorWeights struct {
	Age          float64 // weight of waiting time (s)
	Size         float64 // weight of requested fraction of the machine
	Short        float64 // weight of 1/perceived-runtime
	MachineCores float64 // machine size used to normalize Size
}

// Multifactor builds the SLURM-like linear-combination policy.
func Multifactor(w MultifactorWeights) Policy {
	cores := w.MachineCores
	if cores <= 0 {
		cores = 1
	}
	return New("MULTIFACTOR", w.Age != 0, func(v JobView) float64 {
		prio := w.Age*v.Wait +
			w.Size*(1-v.Cores/cores) +
			w.Short/math.Max(v.Runtime, 1)
		return -prio
	})
}

// FixedOrder ranks tasks by an externally supplied order (job ID → rank).
// The trial engine uses it to realize one permutation of the task set Q
// (§3.2): tasks are served exactly in permutation order. Unknown IDs sort
// last, by submit time.
func FixedOrder(rank map[int]int) PolicyWithID {
	return fixedOrder{rank: rank}
}

// PolicyWithID is a Policy that scores by job identity rather than by task
// characteristics. The simulator detects it and passes the job ID through.
type PolicyWithID interface {
	Policy
	ScoreID(id int, v JobView) float64
}

type fixedOrder struct{ rank map[int]int }

func (f fixedOrder) Name() string      { return "FIXED" }
func (f fixedOrder) TimeVarying() bool { return false }
func (f fixedOrder) Score(v JobView) float64 {
	return v.Submit // fallback when no ID is available
}
func (f fixedOrder) ScoreID(id int, v JobView) float64 {
	if r, ok := f.rank[id]; ok {
		return float64(r)
	}
	return math.MaxInt32 + v.Submit
}

// Registry returns the paper's eight evaluation policies in the order the
// figures present them: FCFS, WFP, UNI, SPT, F4, F3, F2, F1.
func Registry() []Policy {
	return []Policy{FCFS(), WFP3(), UNICEF(), SPT(), F4(), F3(), F2(), F1()}
}

// ByName looks a policy up by its report name (case-sensitive), including
// the extra baselines not in the paper's figures.
func ByName(name string) (Policy, error) {
	all := append(Registry(), LPT(), SAF())
	for _, p := range all {
		if p.Name() == name {
			return p, nil
		}
	}
	// Aliases used in the paper's prose.
	switch name {
	case "WFP":
		return WFP3(), nil
	case "UNI":
		return UNICEF(), nil
	case "EASY":
		// EASY = FCFS + aggressive backfilling; backfilling is a simulator
		// option, so the policy component is FCFS.
		return FCFS(), nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q", name)
}

// Names lists the report names of a policy slice, preserving order.
func Names(ps []Policy) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name()
	}
	return out
}

// SortQueue stably sorts the queue views by ascending policy score with
// deterministic tie-breaking on (submit, id). It is exported for tests and
// for tools that want to display a policy's ordering without running the
// simulator; ids and views run parallel.
func SortQueue(p Policy, ids []int, views []JobView) {
	type entry struct {
		id   int
		view JobView
		key  float64
	}
	withID, _ := p.(PolicyWithID)
	entries := make([]entry, len(ids))
	for i := range ids {
		e := entry{id: ids[i], view: views[i]}
		if withID != nil {
			e.key = withID.ScoreID(e.id, e.view)
		} else {
			e.key = p.Score(e.view)
		}
		entries[i] = e
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		if entries[i].view.Submit != entries[j].view.Submit {
			return entries[i].view.Submit < entries[j].view.Submit
		}
		return entries[i].id < entries[j].id
	})
	for i, e := range entries {
		ids[i], views[i] = e.id, e.view
	}
}
