package sched

import (
	"testing"
)

func TestRandomPolicyDeterministic(t *testing.T) {
	p := Random(42)
	v := view(100, 4, 50, 0)
	if p.Score(v) != p.Score(v) {
		t.Error("same view must score identically")
	}
	q := Random(42)
	if p.Score(v) != q.Score(v) {
		t.Error("same seed must reproduce scores")
	}
	r := Random(43)
	same := 0
	for i := 0; i < 20; i++ {
		w := view(float64(100+i), 4, 50, 0)
		if p.Score(w) == r.Score(w) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched on %d of 20 views", same)
	}
}

func TestRandomPolicySpread(t *testing.T) {
	// Scores must spread over [0,1) rather than collapse.
	p := Random(7)
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		s := p.Score(view(float64(i+1), float64(i%8+1), float64(i*13), 0))
		if s < 0 || s >= 1 {
			t.Fatalf("score %v outside [0,1)", s)
		}
		seen[s] = true
	}
	if len(seen) < 90 {
		t.Errorf("only %d distinct scores out of 100", len(seen))
	}
	if p.TimeVarying() {
		t.Error("random policy is not time-varying")
	}
	if p.Name() != "RANDOM" {
		t.Error("name wrong")
	}
}
