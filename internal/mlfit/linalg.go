package mlfit

import (
	"errors"
	"math"
)

// ErrSingular indicates a (numerically) singular linear system.
var ErrSingular = errors.New("mlfit: singular system")

// solveDense solves A·x = b in place by Gaussian elimination with partial
// pivoting. A is row-major n×n; A and b are clobbered. The fitted systems
// are at most 3×3 (the three coefficients of a candidate function), so no
// sophistication is needed — only numerical care.
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	return solveDenseInto(a, b, nil)
}

// solveDenseInto is solveDense with a caller-owned solution buffer; x is
// grown as needed and returned (a nil x allocates). The elimination and
// back-substitution are identical to solveDense — buffer reuse never
// changes a value.
func solveDenseInto(a [][]float64, b, x []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("mlfit: malformed system")
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 || math.IsNaN(best) {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	if cap(x) < n {
		x = make([]float64, n)
	}
	x = x[:n]
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for k := r + 1; k < n; k++ {
			sum -= a[r][k] * x[k]
		}
		x[r] = sum / a[r][r]
		if math.IsNaN(x[r]) || math.IsInf(x[r], 0) {
			return nil, ErrSingular
		}
	}
	return x, nil
}

// lsqScratch owns the normal-equation buffers one fitting worker reuses
// across weightedLSQ calls: the k×k system, its right-hand side, the
// equilibration norms and the solution. Everything is fully overwritten
// per call, so reuse never changes a result.
type lsqScratch struct {
	ata     [][]float64
	ataBack [9]float64 // k ≤ 3 backing store for the system rows
	atb     [3]float64
	norm    [3]float64
	x       [3]float64
}

// system returns the scratch's k×k normal-equation matrix, zeroed.
func (sc *lsqScratch) system(k int) [][]float64 {
	if cap(sc.ata) < k {
		sc.ata = make([][]float64, k)
	}
	sc.ata = sc.ata[:k]
	for i := range sc.ataBack {
		sc.ataBack[i] = 0
	}
	for r := 0; r < k; r++ {
		sc.ata[r] = sc.ataBack[r*3 : r*3+k]
	}
	return sc.ata
}

// weightedLSQ solves the weighted linear least-squares problem
// min Σ_i (w_i·(Σ_k x_k·feat[k][i] − y_i))² via the normal equations with a
// tiny ridge for rank safety. feat is column-major: feat[k] is feature k's
// values across samples. A non-nil scratch supplies the (at most 3×3)
// system buffers; the returned solution then lives in the scratch and is
// only valid until the next call.
func weightedLSQ(feat [][]float64, y, w []float64, sc *lsqScratch) ([]float64, error) {
	k := len(feat)
	if k == 0 {
		return nil, errors.New("mlfit: no features")
	}
	n := len(y)
	var ata [][]float64
	var atb, norm, x []float64
	if sc != nil && k <= 3 {
		ata = sc.system(k)
		atb = sc.atb[:k]
		norm = sc.norm[:k]
		x = sc.x[:k]
		for i := range atb {
			atb[i] = 0
		}
	} else {
		ata = make([][]float64, k)
		for i := range ata {
			ata[i] = make([]float64, k)
		}
		atb = make([]float64, k)
		norm = make([]float64, k)
		x = nil
	}
	// The accumulation below is the generic triangle
	//
	//	for r: atb[r] += w²·f_r·y;  for c ≥ r: ata[r][c] += w²·f_r·f_c
	//
	// unrolled per feature count with register accumulators. The additions
	// run in the exact order of the generic loop, so the sums — and every
	// coefficient derived from them — are bit-identical; only the
	// per-sample slice indexing is gone. k is 1..3 for the function family
	// (Fit's derived features), with a generic fallback for other callers.
	switch k {
	case 1:
		f0 := feat[0]
		var a00, b0 float64
		for i := 0; i < n; i++ {
			w2 := w[i] * w[i]
			v0 := f0[i]
			b0 += w2 * v0 * y[i]
			a00 += w2 * v0 * v0
		}
		ata[0][0] = a00
		atb[0] = b0
	case 2:
		f0, f1 := feat[0], feat[1]
		var a00, a01, a11, b0, b1 float64
		for i := 0; i < n; i++ {
			w2 := w[i] * w[i]
			v0, v1 := f0[i], f1[i]
			b0 += w2 * v0 * y[i]
			a00 += w2 * v0 * v0
			a01 += w2 * v0 * v1
			b1 += w2 * v1 * y[i]
			a11 += w2 * v1 * v1
		}
		ata[0][0], ata[0][1], ata[1][1] = a00, a01, a11
		atb[0], atb[1] = b0, b1
	case 3:
		f0, f1, f2 := feat[0], feat[1], feat[2]
		var a00, a01, a02, a11, a12, a22, b0, b1, b2 float64
		for i := 0; i < n; i++ {
			w2 := w[i] * w[i]
			v0, v1, v2 := f0[i], f1[i], f2[i]
			b0 += w2 * v0 * y[i]
			a00 += w2 * v0 * v0
			a01 += w2 * v0 * v1
			a02 += w2 * v0 * v2
			b1 += w2 * v1 * y[i]
			a11 += w2 * v1 * v1
			a12 += w2 * v1 * v2
			b2 += w2 * v2 * y[i]
			a22 += w2 * v2 * v2
		}
		ata[0][0], ata[0][1], ata[0][2] = a00, a01, a02
		ata[1][1], ata[1][2] = a11, a12
		ata[2][2] = a22
		atb[0], atb[1], atb[2] = b0, b1, b2
	default:
		for i := 0; i < n; i++ {
			w2 := w[i] * w[i]
			for r := 0; r < k; r++ {
				fr := feat[r][i]
				atb[r] += w2 * fr * y[i]
				for c := r; c < k; c++ {
					ata[r][c] += w2 * fr * feat[c][i]
				}
			}
		}
	}
	for r := 0; r < k; r++ {
		for c := 0; c < r; c++ {
			ata[r][c] = ata[c][r]
		}
	}
	// Column equilibration: scale each feature to unit weighted norm
	// before solving. Feature magnitudes here span ~12 orders (inv(r)
	// against r·n-weighted id(s)), which would otherwise wreck the
	// conditioning of the normal equations.
	for r := 0; r < k; r++ {
		norm[r] = math.Sqrt(ata[r][r])
		if norm[r] == 0 || math.IsNaN(norm[r]) {
			norm[r] = 1
		}
	}
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			ata[r][c] /= norm[r] * norm[c]
		}
		atb[r] /= norm[r]
		ata[r][r] += 1e-12 // ridge on the equilibrated (unit) diagonal
	}
	x, err := solveDenseInto(ata, atb, x)
	if err != nil {
		return nil, err
	}
	for r := 0; r < k; r++ {
		x[r] /= norm[r]
	}
	return x, nil
}
