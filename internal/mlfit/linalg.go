package mlfit

import (
	"errors"
	"math"
)

// ErrSingular indicates a (numerically) singular linear system.
var ErrSingular = errors.New("mlfit: singular system")

// solveDense solves A·x = b in place by Gaussian elimination with partial
// pivoting. A is row-major n×n; A and b are clobbered. The fitted systems
// are at most 3×3 (the three coefficients of a candidate function), so no
// sophistication is needed — only numerical care.
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("mlfit: malformed system")
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 || math.IsNaN(best) {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for k := r + 1; k < n; k++ {
			sum -= a[r][k] * x[k]
		}
		x[r] = sum / a[r][r]
		if math.IsNaN(x[r]) || math.IsInf(x[r], 0) {
			return nil, ErrSingular
		}
	}
	return x, nil
}

// weightedLSQ solves the weighted linear least-squares problem
// min Σ_i (w_i·(Σ_k x_k·feat[k][i] − y_i))² via the normal equations with a
// tiny ridge for rank safety. feat is column-major: feat[k] is feature k's
// values across samples.
func weightedLSQ(feat [][]float64, y, w []float64) ([]float64, error) {
	k := len(feat)
	if k == 0 {
		return nil, errors.New("mlfit: no features")
	}
	n := len(y)
	ata := make([][]float64, k)
	atb := make([]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	for i := 0; i < n; i++ {
		w2 := w[i] * w[i]
		for r := 0; r < k; r++ {
			fr := feat[r][i]
			atb[r] += w2 * fr * y[i]
			for c := r; c < k; c++ {
				ata[r][c] += w2 * fr * feat[c][i]
			}
		}
	}
	for r := 0; r < k; r++ {
		for c := 0; c < r; c++ {
			ata[r][c] = ata[c][r]
		}
	}
	// Column equilibration: scale each feature to unit weighted norm
	// before solving. Feature magnitudes here span ~12 orders (inv(r)
	// against r·n-weighted id(s)), which would otherwise wreck the
	// conditioning of the normal equations.
	norm := make([]float64, k)
	for r := 0; r < k; r++ {
		norm[r] = math.Sqrt(ata[r][r])
		if norm[r] == 0 || math.IsNaN(norm[r]) {
			norm[r] = 1
		}
	}
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			ata[r][c] /= norm[r] * norm[c]
		}
		atb[r] /= norm[r]
		ata[r][r] += 1e-12 // ridge on the equilibrated (unit) diagonal
	}
	x, err := solveDense(ata, atb)
	if err != nil {
		return nil, err
	}
	for r := 0; r < k; r++ {
		x[r] /= norm[r]
	}
	return x, nil
}
