package mlfit

import (
	"math"
	"strings"
	"testing"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/expr"
)

// f1Form is the shape of the paper's F1: log10(r)·n + K·log10(s).
var f1Form = expr.Form{A: expr.BaseLog, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd}

// synthSamples draws samples from a ground-truth function with optional
// relative noise.
func synthSamples(truth expr.Func, n int, noise float64, seed uint64) []Sample {
	rng := dist.New(seed)
	out := make([]Sample, n)
	for i := range out {
		r := math.Exp(rng.Float64() * 10)       // 1 .. ~22000 s
		cores := math.Ceil(rng.Float64() * 256) // 1 .. 256
		s := 1 + rng.Float64()*86400            // first day
		y := truth.Eval(r, cores, s)
		if noise > 0 {
			y *= 1 + noise*(rng.Float64()*2-1)
		}
		out[i] = Sample{R: r, N: cores, S: s, Score: y}
	}
	return out
}

func TestFitRecoversExactFunction(t *testing.T) {
	truth := expr.Func{Form: f1Form, C: [3]float64{2, 3, 100}}
	samples := synthSamples(truth, 400, 0, 1)
	res, err := Fit(f1Form, samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The coefficient split (2,3) vs (6,1) is not identifiable, but the
	// function values are: predictions must match everywhere.
	for _, s := range samples[:50] {
		got := res.Func.Eval(s.R, s.N, s.S)
		if math.Abs(got-s.Score) > 1e-6*(1+math.Abs(s.Score)) {
			t.Fatalf("prediction %v != truth %v at (%v,%v,%v)", got, s.Score, s.R, s.N, s.S)
		}
	}
	if res.Rank > 1e-6 {
		t.Errorf("rank = %v, want ~0", res.Rank)
	}
}

func TestFitWithPolishMatchesClosedForm(t *testing.T) {
	truth := expr.Func{Form: f1Form, C: [3]float64{1, 1, 870}}
	samples := synthSamples(truth, 300, 0, 2)
	plain, err := Fit(f1Form, samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	polished, err := Fit(f1Form, samples, Options{Polish: true})
	if err != nil {
		t.Fatal(err)
	}
	if polished.Rank > plain.Rank+1e-9 {
		t.Errorf("polish degraded rank: %v vs %v", polished.Rank, plain.Rank)
	}
}

func TestFitAdditiveForm(t *testing.T) {
	form := expr.Form{A: expr.BaseSqrt, B: expr.BaseLog, C: expr.BaseID, Op1: expr.OpAdd, Op2: expr.OpAdd}
	truth := expr.Func{Form: form, C: [3]float64{0.5, -2, 3e-4}}
	samples := synthSamples(truth, 500, 0, 3)
	res, err := Fit(form, samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.C {
		if math.Abs(res.Func.C[i]-truth.C[i]) > 1e-6*(1+math.Abs(truth.C[i])) {
			t.Errorf("coef[%d] = %v, want %v", i, res.Func.C[i], truth.C[i])
		}
	}
}

func TestFitDivisionForm(t *testing.T) {
	form := expr.Form{A: expr.BaseID, B: expr.BaseSqrt, C: expr.BaseLog, Op1: expr.OpDiv, Op2: expr.OpAdd}
	truth := expr.Func{Form: form, C: [3]float64{4, 2, 50}} // (4r)/(2√n) + 50·log10(s)
	samples := synthSamples(truth, 400, 0, 4)
	res, err := Fit(form, samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rank > 1e-6*PaperWeight(samples[0]) {
		t.Errorf("rank = %v, want ~0", res.Rank)
	}
	for _, s := range samples[:20] {
		got := res.Func.Eval(s.R, s.N, s.S)
		if math.Abs(got-s.Score) > 1e-6*(1+math.Abs(s.Score)) {
			t.Fatalf("prediction mismatch: %v vs %v", got, s.Score)
		}
	}
}

func TestFitEmptySamples(t *testing.T) {
	if _, err := Fit(f1Form, nil, Options{}); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
	if _, err := FitAll(nil, Options{}); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestFitAllRanksGeneratingFormFirst(t *testing.T) {
	truth := expr.Func{Form: f1Form, C: [3]float64{1, 1, 870}}
	samples := synthSamples(truth, 300, 0.02, 5) // slight noise
	results, err := FitAll(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 576 {
		t.Fatalf("got %d results, want 576", len(results))
	}
	// Ranks ascend.
	for i := 1; i < len(results); i++ {
		if results[i].Rank < results[i-1].Rank {
			t.Fatal("results not sorted by rank")
		}
	}
	// The best fit must essentially explain the data, and its compact
	// simplified shape must be the generating one.
	best := results[0]
	simp, _ := best.Func.Simplified()
	if !strings.Contains(simp.Compact(), "log10(r)*n") {
		t.Errorf("best form = %s (rank %v), want log10(r)*n + K*log10(s) family",
			simp.Compact(), best.Rank)
	}
}

func TestFitAllDeterministic(t *testing.T) {
	truth := expr.Func{Form: f1Form, C: [3]float64{1, 1, 870}}
	samples := synthSamples(truth, 150, 0.05, 6)
	a, err := FitAll(samples, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitAll(samples, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Func != b[i].Func || a[i].Rank != b[i].Rank {
			t.Fatalf("result %d differs across worker counts", i)
		}
	}
}

func TestTopDistinct(t *testing.T) {
	truth := expr.Func{Form: f1Form, C: [3]float64{1, 1, 870}}
	samples := synthSamples(truth, 200, 0.05, 7)
	results, err := FitAll(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	top := TopDistinct(results, 4)
	if len(top) != 4 {
		t.Fatalf("got %d distinct, want 4", len(top))
	}
	seen := map[string]bool{}
	for _, r := range top {
		s, _ := r.Func.Simplified()
		key := s.Compact()
		if seen[key] {
			t.Errorf("duplicate compact form %q", key)
		}
		seen[key] = true
	}
}

func TestWeightingChangesFit(t *testing.T) {
	// Corrupt the scores of small tasks; the r·n weighting should shrug it
	// off while the unweighted fit gets dragged.
	truth := expr.Func{Form: f1Form, C: [3]float64{1, 1, 870}}
	samples := synthSamples(truth, 600, 0, 8)
	for i := range samples {
		if samples[i].R*samples[i].N < 1000 {
			samples[i].Score *= 5
		}
	}
	weighted, err := Fit(f1Form, samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unweighted, err := Fit(f1Form, samples, Options{Weight: func(Sample) float64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate both on large tasks only: the weighted fit must be better.
	var werr, uerr float64
	var count int
	for _, s := range samples {
		if s.R*s.N < 1000 {
			continue
		}
		werr += math.Abs(weighted.Func.Eval(s.R, s.N, s.S) - s.Score)
		uerr += math.Abs(unweighted.Func.Eval(s.R, s.N, s.S) - s.Score)
		count++
	}
	if count == 0 {
		t.Fatal("no large tasks in sample")
	}
	if werr >= uerr {
		t.Errorf("weighted error %v not below unweighted %v on large tasks", werr, uerr)
	}
}

func TestFitRankAlwaysFinite(t *testing.T) {
	truth := expr.Func{Form: f1Form, C: [3]float64{1, 1, 870}}
	samples := synthSamples(truth, 100, 0.3, 9)
	for _, form := range expr.Enumerate() {
		res, err := Fit(form, samples, Options{})
		if err != nil {
			t.Fatalf("form %v: %v", form, err)
		}
		if math.IsNaN(res.Rank) {
			t.Fatalf("form %v: NaN rank", form)
		}
	}
}
