package mlfit

import (
	"math"
	"testing"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/expr"
)

// planesTestSamples builds a deterministic training set spanning the
// training ranges, scores from a known generator plus mild noise.
func planesTestSamples(n int) []Sample {
	truth := expr.Func{
		Form: expr.Form{A: expr.BaseLog, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd},
		C:    [3]float64{1, 1, 870},
	}
	rng := dist.New(1234)
	samples := make([]Sample, n)
	for i := range samples {
		r := 1 + rng.Float64()*27000
		nc := 1 + rng.Float64()*255
		s := 1 + rng.Float64()*86400
		samples[i] = Sample{R: r, N: nc, S: s, Score: truth.Eval(r, nc, s) * (1 + 0.01*rng.Float64())}
	}
	return samples
}

// TestFeaturePlanesMatchBuildFeatures pins the shared planes to the
// per-form feature builder: every borrowed column must be bit-identical
// to a fresh buildFeatures pass, for every form of the family.
func TestFeaturePlanesMatchBuildFeatures(t *testing.T) {
	samples := planesTestSamples(64)
	planes := BuildFeaturePlanes(samples, nil)
	if planes.Len() != len(samples) {
		t.Fatalf("planes.Len() = %d, want %d", planes.Len(), len(samples))
	}
	for _, form := range expr.Enumerate() {
		want := buildFeatures(form, samples, PaperWeight)
		got := planes.features(form)
		for i := range samples {
			for name, pair := range map[string][2]float64{
				"a": {want.a[i], got.a[i]},
				"b": {want.b[i], got.b[i]},
				"c": {want.c[i], got.c[i]},
				"y": {want.y[i], got.y[i]},
				"w": {want.w[i], got.w[i]},
			} {
				if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
					t.Fatalf("form %v sample %d column %s: %v != %v", form, i, name, pair[0], pair[1])
				}
			}
		}
	}
}

// TestFitAllMatchesSequentialFit is the differential harness for the
// fast path: FitAll (shared planes, per-worker scratch) must produce
// bit-identical coefficients, ranks and SSEs to one-at-a-time Fit calls
// (fresh features, no scratch), with and without the LM polish.
func TestFitAllMatchesSequentialFit(t *testing.T) {
	samples := planesTestSamples(48)
	for _, polish := range []bool{false, true} {
		opt := Options{Polish: polish, Workers: 3}
		ranked, err := FitAll(samples, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranked) != 576 {
			t.Fatalf("FitAll returned %d results, want 576", len(ranked))
		}
		for _, got := range ranked {
			want, err := Fit(got.Func.Form, samples, opt)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(want.Rank) != math.Float64bits(got.Rank) ||
				math.Float64bits(want.SSE) != math.Float64bits(got.SSE) ||
				want.Converged != got.Converged ||
				want.Func.C != got.Func.C {
				t.Fatalf("polish=%v form %v: FitAll %+v != Fit %+v", polish, got.Func.Form, got, want)
			}
		}
	}
}

// TestCrossValidateMatchesRebuildPerFold replicates the pre-planes
// cross-validation (rebuild sample slices per fold, Fit, rank via Eval)
// and requires the plane-gather implementation to reproduce it bit for
// bit.
func TestCrossValidateMatchesRebuildPerFold(t *testing.T) {
	samples := planesTestSamples(50)
	const k = 5
	const seed = 77
	forms := []expr.Form{
		{A: expr.BaseLog, B: expr.BaseID, C: expr.BaseLog, Op1: expr.OpMul, Op2: expr.OpAdd},
		{A: expr.BaseInv, B: expr.BaseSqrt, C: expr.BaseID, Op1: expr.OpDiv, Op2: expr.OpDiv},
		{A: expr.BaseID, B: expr.BaseID, C: expr.BaseID, Op1: expr.OpAdd, Op2: expr.OpAdd},
		{A: expr.BaseSqrt, B: expr.BaseLog, C: expr.BaseInv, Op1: expr.OpAdd, Op2: expr.OpMul},
	}
	for _, form := range forms {
		opt := Options{}
		got, err := CrossValidate(form, samples, k, opt, seed)
		if err != nil {
			t.Fatal(err)
		}

		// The oracle: the original fold loop, verbatim.
		perm := dist.New(seed).Perm(len(samples))
		folds := make([][]Sample, k)
		for i, pi := range perm {
			folds[i%k] = append(folds[i%k], samples[pi])
		}
		for held := 0; held < k; held++ {
			train := make([]Sample, 0, len(samples))
			for fi, f := range folds {
				if fi != held {
					train = append(train, f...)
				}
			}
			fit, err := Fit(form, train, opt)
			if err != nil {
				t.Fatal(err)
			}
			var rank float64
			for _, s := range folds[held] {
				rank += math.Abs(fit.Func.Eval(s.R, s.N, s.S) - s.Score)
			}
			want := rank / float64(len(folds[held]))
			if math.Float64bits(got.FoldRanks[held]) != math.Float64bits(want) {
				t.Fatalf("form %v fold %d: rank %v != oracle %v", form, held, got.FoldRanks[held], want)
			}
		}
	}
}

// TestLMScratchReuse pins buffer reuse: running two different
// optimizations through one scratch must give the same results as fresh
// allocations, and the returned Coef must not alias the scratch.
func TestLMScratchReuse(t *testing.T) {
	evalA := func(c []float64, out []float64) {
		for i := range out {
			x := float64(i)
			out[i] = c[0]*x*x + c[1]*x - (2*x*x - 3*x)
		}
	}
	evalB := func(c []float64, out []float64) {
		for i := range out {
			x := float64(i) * 0.5
			out[i] = math.Exp(-c[0]*x) - math.Exp(-0.9*x)
		}
	}
	var sc LMScratch
	a1 := LevenbergMarquardt(evalA, []float64{0, 0}, 8, LMOptions{Scratch: &sc})
	b1 := LevenbergMarquardt(evalB, []float64{0.1}, 12, LMOptions{Scratch: &sc})
	a2 := LevenbergMarquardt(evalA, []float64{0, 0}, 8, LMOptions{})
	b2 := LevenbergMarquardt(evalB, []float64{0.1}, 12, LMOptions{})
	for i := range a1.Coef {
		if math.Float64bits(a1.Coef[i]) != math.Float64bits(a2.Coef[i]) {
			t.Fatalf("scratch changed quadratic fit: %v vs %v", a1.Coef, a2.Coef)
		}
	}
	if math.Float64bits(b1.Coef[0]) != math.Float64bits(b2.Coef[0]) {
		t.Fatalf("scratch changed exponential fit: %v vs %v", b1.Coef, b2.Coef)
	}
	// Coef must be a copy, not a view of scratch.c.
	saved := b1.Coef[0]
	LevenbergMarquardt(evalA, []float64{5, 5}, 8, LMOptions{Scratch: &sc})
	if b1.Coef[0] != saved {
		t.Fatal("LMResult.Coef aliases the scratch buffers")
	}
}
