package mlfit

import "math"

// LMOptions tunes the Levenberg–Marquardt optimizer. Zero values select
// the defaults in parentheses.
type LMOptions struct {
	MaxIter   int     // maximum accepted iterations (100)
	Tol       float64 // relative SSE improvement to declare convergence (1e-12)
	InitLamda float64 // initial damping (1e-3)
	// Scratch optionally supplies caller-owned working buffers (residual
	// vectors, the numeric Jacobian, the normal-equation system), letting
	// a caller running many optimizations — FitAll's 576 candidate fits —
	// amortize them. A nil Scratch allocates per call. Buffer reuse never
	// changes a result: every buffer is fully overwritten before use, and
	// the returned Coef is always freshly allocated.
	Scratch *LMScratch
}

// LMScratch owns a Levenberg–Marquardt run's working buffers. The zero
// value is ready; buffers grow to the largest (nRes, nParam) seen. A
// scratch must not be shared by concurrent optimizations.
type LMScratch struct {
	res, trial []float64   // residual vectors at c and at a trial point
	pert       []float64   // perturbed parameter vector for the Jacobian
	jac        [][]float64 // jac[k][i] = ∂res_i/∂c_k
	jtj        [][]float64 // JᵀJ
	jtr        []float64   // −Jᵀres
	sys        [][]float64 // damped copy of JᵀJ per attempt
	rhs        []float64
	cand       []float64
	delta      []float64
	c          []float64
}

func growVec(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growMat(m [][]float64, rows, cols int) [][]float64 {
	if cap(m) < rows {
		m = make([][]float64, rows)
	}
	m = m[:rows]
	for r := range m {
		if cap(m[r]) < cols {
			m[r] = make([]float64, cols)
		} else {
			m[r] = m[r][:cols]
		}
	}
	return m
}

// prepare sizes every buffer for an (nRes residuals, np parameters) run.
func (s *LMScratch) prepare(nRes, np int) {
	s.res = growVec(s.res, nRes)
	s.trial = growVec(s.trial, nRes)
	s.pert = growVec(s.pert, np)
	s.jac = growMat(s.jac, np, nRes)
	s.jtj = growMat(s.jtj, np, np)
	s.jtr = growVec(s.jtr, np)
	s.sys = growMat(s.sys, np, np)
	s.rhs = growVec(s.rhs, np)
	s.cand = growVec(s.cand, np)
	s.delta = growVec(s.delta, np)
	s.c = growVec(s.c, np)
}

// LMResult reports the optimizer outcome.
type LMResult struct {
	Coef      []float64
	SSE       float64
	Iters     int
	Converged bool
}

// LevenbergMarquardt minimizes Σ residᵢ(c)² over c, starting from c0.
// eval must fill out with the residual vector at c. It is the stdlib-only
// equivalent of SciPy's leastsq used by the paper's artifact: damped
// Gauss–Newton steps with a numerically differentiated Jacobian. All
// working buffers come from opt.Scratch when provided.
func LevenbergMarquardt(eval func(c []float64, out []float64), c0 []float64, nRes int, opt LMOptions) LMResult {
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-12
	}
	if opt.InitLamda <= 0 {
		opt.InitLamda = 1e-3
	}
	np := len(c0)
	sc := opt.Scratch
	if sc == nil {
		sc = &LMScratch{}
	}
	sc.prepare(nRes, np)
	c := sc.c
	copy(c, c0)
	res, trial, pert := sc.res, sc.trial, sc.pert
	jac := sc.jac

	finish := func(r LMResult) LMResult {
		// Coef is the one buffer callers keep; hand out a fresh copy so
		// the scratch can be reused by the next fit.
		r.Coef = append(make([]float64, 0, np), c...)
		return r
	}

	eval(c, res)
	sse := sumSquares(res)
	if math.IsNaN(sse) || math.IsInf(sse, 0) {
		return finish(LMResult{SSE: math.Inf(1)})
	}
	lambda := opt.InitLamda
	result := LMResult{}
	for iter := 0; iter < opt.MaxIter; iter++ {
		result.Iters = iter + 1
		// Forward-difference Jacobian.
		copy(pert, c)
		for k := 0; k < np; k++ {
			h := 1e-6 * math.Max(math.Abs(c[k]), 1e-8)
			pert[k] = c[k] + h
			eval(pert, trial)
			inv := 1 / h
			for i := 0; i < nRes; i++ {
				jac[k][i] = (trial[i] - res[i]) * inv
			}
			pert[k] = c[k]
		}
		// Normal equations: (JᵀJ + λ·diag(JᵀJ))·δ = −Jᵀres.
		jtj, jtr := sc.jtj, sc.jtr
		for r := 0; r < np; r++ {
			for cc := r; cc < np; cc++ {
				var s float64
				for i := 0; i < nRes; i++ {
					s += jac[r][i] * jac[cc][i]
				}
				jtj[r][cc] = s
			}
			var s float64
			for i := 0; i < nRes; i++ {
				s += jac[r][i] * res[i]
			}
			jtr[r] = -s
		}
		for r := 0; r < np; r++ {
			for cc := 0; cc < r; cc++ {
				jtj[r][cc] = jtj[cc][r]
			}
		}
		improved := false
		for attempt := 0; attempt < 20; attempt++ {
			sys, rhs := sc.sys, sc.rhs
			copy(rhs, jtr)
			for r := 0; r < np; r++ {
				copy(sys[r], jtj[r])
				damp := lambda * jtj[r][r]
				if damp == 0 {
					damp = lambda * 1e-12
				}
				sys[r][r] += damp
			}
			delta, err := solveDenseInto(sys, rhs, sc.delta)
			if err == nil {
				cand := sc.cand
				for k := range cand {
					cand[k] = c[k] + delta[k]
				}
				eval(cand, trial)
				candSSE := sumSquares(trial)
				if !math.IsNaN(candSSE) && candSSE < sse {
					copy(c, cand)
					copy(res, trial)
					rel := (sse - candSSE) / math.Max(sse, 1e-300)
					sse = candSSE
					lambda = math.Max(lambda/10, 1e-12)
					improved = true
					if rel < opt.Tol {
						result.Converged = true
					}
					break
				}
			}
			lambda *= 10
			if lambda > 1e12 {
				break
			}
		}
		if !improved {
			result.Converged = true
			break
		}
		if result.Converged {
			break
		}
	}
	result.SSE = sse
	return finish(result)
}

func sumSquares(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return s
}
