package mlfit

import "math"

// LMOptions tunes the Levenberg–Marquardt optimizer. Zero values select
// the defaults in parentheses.
type LMOptions struct {
	MaxIter   int     // maximum accepted iterations (100)
	Tol       float64 // relative SSE improvement to declare convergence (1e-12)
	InitLamda float64 // initial damping (1e-3)
}

// LMResult reports the optimizer outcome.
type LMResult struct {
	Coef      []float64
	SSE       float64
	Iters     int
	Converged bool
}

// LevenbergMarquardt minimizes Σ residᵢ(c)² over c, starting from c0.
// eval must fill out with the residual vector at c. It is the stdlib-only
// equivalent of SciPy's leastsq used by the paper's artifact: damped
// Gauss–Newton steps with a numerically differentiated Jacobian.
func LevenbergMarquardt(eval func(c []float64, out []float64), c0 []float64, nRes int, opt LMOptions) LMResult {
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-12
	}
	if opt.InitLamda <= 0 {
		opt.InitLamda = 1e-3
	}
	np := len(c0)
	c := append([]float64(nil), c0...)
	res := make([]float64, nRes)
	trial := make([]float64, nRes)
	jac := make([][]float64, np) // jac[k][i] = ∂res_i/∂c_k
	for k := range jac {
		jac[k] = make([]float64, nRes)
	}
	pert := make([]float64, np)

	eval(c, res)
	sse := sumSquares(res)
	if math.IsNaN(sse) || math.IsInf(sse, 0) {
		return LMResult{Coef: c, SSE: math.Inf(1)}
	}
	lambda := opt.InitLamda
	result := LMResult{}
	for iter := 0; iter < opt.MaxIter; iter++ {
		result.Iters = iter + 1
		// Forward-difference Jacobian.
		copy(pert, c)
		for k := 0; k < np; k++ {
			h := 1e-6 * math.Max(math.Abs(c[k]), 1e-8)
			pert[k] = c[k] + h
			eval(pert, trial)
			inv := 1 / h
			for i := 0; i < nRes; i++ {
				jac[k][i] = (trial[i] - res[i]) * inv
			}
			pert[k] = c[k]
		}
		// Normal equations: (JᵀJ + λ·diag(JᵀJ))·δ = −Jᵀres.
		jtj := make([][]float64, np)
		jtr := make([]float64, np)
		for r := 0; r < np; r++ {
			jtj[r] = make([]float64, np)
			for cc := r; cc < np; cc++ {
				var s float64
				for i := 0; i < nRes; i++ {
					s += jac[r][i] * jac[cc][i]
				}
				jtj[r][cc] = s
			}
			var s float64
			for i := 0; i < nRes; i++ {
				s += jac[r][i] * res[i]
			}
			jtr[r] = -s
		}
		for r := 0; r < np; r++ {
			for cc := 0; cc < r; cc++ {
				jtj[r][cc] = jtj[cc][r]
			}
		}
		improved := false
		for attempt := 0; attempt < 20; attempt++ {
			sys := make([][]float64, np)
			rhs := append([]float64(nil), jtr...)
			for r := 0; r < np; r++ {
				sys[r] = append([]float64(nil), jtj[r]...)
				damp := lambda * jtj[r][r]
				if damp == 0 {
					damp = lambda * 1e-12
				}
				sys[r][r] += damp
			}
			delta, err := solveDense(sys, rhs)
			if err == nil {
				cand := make([]float64, np)
				for k := range cand {
					cand[k] = c[k] + delta[k]
				}
				eval(cand, trial)
				candSSE := sumSquares(trial)
				if !math.IsNaN(candSSE) && candSSE < sse {
					copy(c, cand)
					copy(res, trial)
					rel := (sse - candSSE) / math.Max(sse, 1e-300)
					sse = candSSE
					lambda = math.Max(lambda/10, 1e-12)
					improved = true
					if rel < opt.Tol {
						result.Converged = true
					}
					break
				}
			}
			lambda *= 10
			if lambda > 1e12 {
				break
			}
		}
		if !improved {
			result.Converged = true
			break
		}
		if result.Converged {
			break
		}
	}
	result.Coef = c
	result.SSE = sse
	return result
}

func sumSquares(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return s
}
