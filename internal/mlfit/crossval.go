package mlfit

import (
	"fmt"
	"math"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/expr"
	"github.com/hpcsched/gensched/internal/stats"
)

// CVResult reports k-fold cross-validation of one candidate form: the
// Eq. 5 rank on each held-out fold plus summary statistics. The paper fits
// on all data and validates by scheduling; cross-validation is the
// complementary in-distribution check that a form is not overfitting the
// score noise.
type CVResult struct {
	Form      expr.Form
	FoldRanks []float64
	MeanRank  float64
	StdRank   float64
}

// CrossValidate runs k-fold cross-validation of form on the samples:
// fit on k-1 folds, evaluate the Eq. 5 rank on the held-out fold. Folds
// are assigned by a deterministic shuffle of the samples with seed.
func CrossValidate(form expr.Form, samples []Sample, k int, opt Options, seed uint64) (CVResult, error) {
	if k < 2 {
		return CVResult{}, fmt.Errorf("mlfit: cross-validation needs k >= 2, got %d", k)
	}
	if len(samples) < k {
		return CVResult{}, fmt.Errorf("mlfit: %d samples cannot fill %d folds", len(samples), k)
	}
	perm := dist.New(seed).Perm(len(samples))
	folds := make([][]Sample, k)
	for i, pi := range perm {
		folds[i%k] = append(folds[i%k], samples[pi])
	}
	res := CVResult{Form: form, FoldRanks: make([]float64, 0, k)}
	for held := 0; held < k; held++ {
		train := make([]Sample, 0, len(samples))
		for fi, f := range folds {
			if fi != held {
				train = append(train, f...)
			}
		}
		fit, err := Fit(form, train, opt)
		if err != nil {
			return CVResult{}, err
		}
		var rank float64
		for _, s := range folds[held] {
			rank += math.Abs(fit.Func.Eval(s.R, s.N, s.S) - s.Score)
		}
		res.FoldRanks = append(res.FoldRanks, rank/float64(len(folds[held])))
	}
	res.MeanRank = stats.Mean(res.FoldRanks)
	res.StdRank = stats.StdDev(res.FoldRanks)
	return res, nil
}

// OrderFidelity returns the Spearman rank correlation between a fitted
// function's predictions and the observed scores. A scheduling policy
// only uses the induced *order* of the queue, so this — not the absolute
// fitting error — is the deployment-relevant quality measure; +1 means
// the policy sorts tasks exactly as the simulated scores would.
func OrderFidelity(f expr.Func, samples []Sample) float64 {
	if len(samples) < 2 {
		return math.NaN()
	}
	pred := make([]float64, len(samples))
	obs := make([]float64, len(samples))
	for i, s := range samples {
		pred[i] = f.Eval(s.R, s.N, s.S)
		obs[i] = s.Score
	}
	return stats.Spearman(pred, obs)
}
