package mlfit

import (
	"fmt"
	"math"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/expr"
	"github.com/hpcsched/gensched/internal/stats"
)

// CVResult reports k-fold cross-validation of one candidate form: the
// Eq. 5 rank on each held-out fold plus summary statistics. The paper fits
// on all data and validates by scheduling; cross-validation is the
// complementary in-distribution check that a form is not overfitting the
// score noise.
type CVResult struct {
	Form      expr.Form
	FoldRanks []float64
	MeanRank  float64
	StdRank   float64
}

// CrossValidate runs k-fold cross-validation of form on the samples:
// fit on k-1 folds, evaluate the Eq. 5 rank on the held-out fold. Folds
// are assigned by a deterministic shuffle of the samples with seed.
//
// The base transforms, target and weights are computed once into shared
// FeaturePlanes; every fold then *gathers* its training columns from the
// planes instead of re-deriving features per fold — the fold loop touches
// only the three columns the form actually uses. The gathered values (and
// therefore every fitted coefficient and fold rank) are bit-identical to
// the rebuild-per-fold path this replaces.
func CrossValidate(form expr.Form, samples []Sample, k int, opt Options, seed uint64) (CVResult, error) {
	if k < 2 {
		return CVResult{}, fmt.Errorf("mlfit: cross-validation needs k >= 2, got %d", k)
	}
	if len(samples) < k {
		return CVResult{}, fmt.Errorf("mlfit: %d samples cannot fill %d folds", len(samples), k)
	}
	perm := dist.New(seed).Perm(len(samples))
	folds := make([][]int, k) // original sample indices, in shuffle order
	for i, pi := range perm {
		folds[i%k] = append(folds[i%k], pi)
	}
	planes := BuildFeaturePlanes(samples, opt.Weight)
	full := planes.features(form)
	n := planes.Len()
	train := features{
		a: make([]float64, 0, n), b: make([]float64, 0, n), c: make([]float64, 0, n),
		y: make([]float64, 0, n), w: make([]float64, 0, n),
	}
	var sc fitScratch
	res := CVResult{Form: form, FoldRanks: make([]float64, 0, k)}
	for held := 0; held < k; held++ {
		train.a, train.b, train.c = train.a[:0], train.b[:0], train.c[:0]
		train.y, train.w = train.y[:0], train.w[:0]
		for fi, fold := range folds {
			if fi == held {
				continue
			}
			for _, idx := range fold {
				train.a = append(train.a, full.a[idx])
				train.b = append(train.b, full.b[idx])
				train.c = append(train.c, full.c[idx])
				train.y = append(train.y, full.y[idx])
				train.w = append(train.w, full.w[idx])
			}
		}
		fit := fitFeatures(form, train, opt, &sc)
		var rank float64
		for _, idx := range folds[held] {
			pred := form.Combine(fit.Func.C, full.a[idx], full.b[idx], full.c[idx])
			rank += math.Abs(pred - full.y[idx])
		}
		res.FoldRanks = append(res.FoldRanks, rank/float64(len(folds[held])))
	}
	res.MeanRank = stats.Mean(res.FoldRanks)
	res.StdRank = stats.StdDev(res.FoldRanks)
	return res, nil
}

// OrderFidelity returns the Spearman rank correlation between a fitted
// function's predictions and the observed scores. A scheduling policy
// only uses the induced *order* of the queue, so this — not the absolute
// fitting error — is the deployment-relevant quality measure; +1 means
// the policy sorts tasks exactly as the simulated scores would.
func OrderFidelity(f expr.Func, samples []Sample) float64 {
	if len(samples) < 2 {
		return math.NaN()
	}
	pred := make([]float64, len(samples))
	obs := make([]float64, len(samples))
	for i, s := range samples {
		pred[i] = f.Eval(s.R, s.N, s.S)
		obs[i] = s.Score
	}
	return stats.Spearman(pred, obs)
}
