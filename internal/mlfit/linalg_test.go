package mlfit

import (
	"math"
	"testing"
)

func TestSolveDenseKnown(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := solveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveDensePivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	b := []float64{3, 5}
	x, err := solveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-5) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [5 3]", x)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := solveDense(a, []float64{1, 2}); err == nil {
		t.Error("singular system solved")
	}
	if _, err := solveDense(nil, nil); err == nil {
		t.Error("empty system solved")
	}
	if _, err := solveDense([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched system solved")
	}
}

func TestWeightedLSQRecoversLinearModel(t *testing.T) {
	// y = 3·x1 − 2·x2 + 0.5·x3, exact.
	n := 50
	f1 := make([]float64, n)
	f2 := make([]float64, n)
	f3 := make([]float64, n)
	y := make([]float64, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		x1 := float64(i + 1)
		x2 := float64((i*7)%13 + 1)
		x3 := float64((i*3)%5 + 1)
		f1[i], f2[i], f3[i] = x1, x2, x3
		y[i] = 3*x1 - 2*x2 + 0.5*x3
		w[i] = 1 + float64(i%4)
	}
	x, err := weightedLSQ([][]float64{f1, f2, f3}, y, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -2, 0.5}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Errorf("coef[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestWeightedLSQWeightsMatter(t *testing.T) {
	// Two inconsistent points; the heavier one pulls the single
	// coefficient of y = k·x toward itself.
	feat := [][]float64{{1, 1}}
	y := []float64{0, 10}
	heavy0, err := weightedLSQ(feat, y, []float64{10, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	heavy1, err := weightedLSQ(feat, y, []float64{1, 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(heavy0[0] < 1 && heavy1[0] > 9) {
		t.Errorf("weights ignored: %v vs %v", heavy0[0], heavy1[0])
	}
}

func TestLevenbergMarquardtQuadratic(t *testing.T) {
	// Minimize residuals of y = c0·x² + c1·x + c2 over noisy-free data:
	// exact recovery expected despite nonlinear optimizer path.
	xs := []float64{-3, -2, -1, 0, 1, 2, 3, 4}
	truth := []float64{1.5, -2, 0.75}
	eval := func(c []float64, out []float64) {
		for i, x := range xs {
			pred := c[0]*x*x + c[1]*x + c[2]
			target := truth[0]*x*x + truth[1]*x + truth[2]
			out[i] = pred - target
		}
	}
	res := LevenbergMarquardt(eval, []float64{0, 0, 0}, len(xs), LMOptions{})
	if !res.Converged {
		t.Error("did not converge")
	}
	for i := range truth {
		if math.Abs(res.Coef[i]-truth[i]) > 1e-6 {
			t.Errorf("coef[%d] = %v, want %v", i, res.Coef[i], truth[i])
		}
	}
	if res.SSE > 1e-12 {
		t.Errorf("SSE = %v", res.SSE)
	}
}

func TestLevenbergMarquardtExponential(t *testing.T) {
	// Genuinely nonlinear: y = exp(-c·x), recover c = 0.7.
	xs := make([]float64, 20)
	for i := range xs {
		xs[i] = float64(i) * 0.25
	}
	eval := func(c []float64, out []float64) {
		for i, x := range xs {
			out[i] = math.Exp(-c[0]*x) - math.Exp(-0.7*x)
		}
	}
	res := LevenbergMarquardt(eval, []float64{0.1}, len(xs), LMOptions{})
	if math.Abs(res.Coef[0]-0.7) > 1e-6 {
		t.Errorf("c = %v, want 0.7", res.Coef[0])
	}
}

func TestLevenbergMarquardtHandlesNaN(t *testing.T) {
	// An eval that returns NaN at the start must not panic or loop.
	eval := func(c []float64, out []float64) {
		for i := range out {
			out[i] = math.NaN()
		}
	}
	res := LevenbergMarquardt(eval, []float64{1}, 3, LMOptions{MaxIter: 5})
	if !math.IsInf(res.SSE, 1) {
		t.Errorf("SSE = %v, want +Inf marker", res.SSE)
	}
}
