package mlfit

import (
	"math"
	"testing"

	"github.com/hpcsched/gensched/internal/expr"
)

func TestCrossValidateRecoversGenerator(t *testing.T) {
	truth := expr.Func{Form: f1Form, C: [3]float64{1, 1, 870}}
	samples := synthSamples(truth, 300, 0.02, 21)
	cv, err := CrossValidate(f1Form, samples, 5, Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.FoldRanks) != 5 {
		t.Fatalf("got %d folds", len(cv.FoldRanks))
	}
	// Held-out error must stay small relative to the target scale.
	scale := 0.0
	for _, s := range samples {
		scale += math.Abs(s.Score)
	}
	scale /= float64(len(samples))
	if cv.MeanRank > 0.05*scale {
		t.Errorf("CV rank %v too large (scale %v)", cv.MeanRank, scale)
	}
}

func TestCrossValidateDetectsWrongForm(t *testing.T) {
	// Data from the F1 shape; a structurally wrong form (pure inverse
	// product) must validate much worse.
	truth := expr.Func{Form: f1Form, C: [3]float64{1, 1, 870}}
	samples := synthSamples(truth, 300, 0.02, 22)
	good, err := CrossValidate(f1Form, samples, 5, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	badForm := expr.Form{A: expr.BaseInv, B: expr.BaseInv, C: expr.BaseInv, Op1: expr.OpMul, Op2: expr.OpMul}
	bad, err := CrossValidate(badForm, samples, 5, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if good.MeanRank*10 > bad.MeanRank {
		t.Errorf("wrong form CV rank %v not clearly above right form %v", bad.MeanRank, good.MeanRank)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	truth := expr.Func{Form: f1Form, C: [3]float64{1, 1, 870}}
	samples := synthSamples(truth, 10, 0, 23)
	if _, err := CrossValidate(f1Form, samples, 1, Options{}, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidate(f1Form, samples[:3], 5, Options{}, 1); err == nil {
		t.Error("too few samples accepted")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	truth := expr.Func{Form: f1Form, C: [3]float64{1, 1, 870}}
	samples := synthSamples(truth, 100, 0.05, 24)
	a, err := CrossValidate(f1Form, samples, 4, Options{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(f1Form, samples, 4, Options{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.FoldRanks {
		if a.FoldRanks[i] != b.FoldRanks[i] {
			t.Fatal("cross-validation not deterministic")
		}
	}
}

func TestOrderFidelity(t *testing.T) {
	truth := expr.Func{Form: f1Form, C: [3]float64{1, 1, 870}}
	samples := synthSamples(truth, 200, 0, 25)
	// The generating function orders its own data perfectly.
	if rho := OrderFidelity(truth, samples); math.Abs(rho-1) > 1e-9 {
		t.Errorf("self fidelity = %v, want 1", rho)
	}
	// A negated function orders it perfectly backwards.
	neg := truth
	neg.C = [3]float64{-1, 1, -870} // -(log10 r * n) - 870 log10 s
	if rho := OrderFidelity(neg, samples); rho > -0.9 {
		t.Errorf("negated fidelity = %v, want near -1", rho)
	}
	if rho := OrderFidelity(truth, samples[:1]); !math.IsNaN(rho) {
		t.Errorf("single-sample fidelity = %v, want NaN", rho)
	}
}

func TestOrderFidelityOfFittedTop(t *testing.T) {
	// Fit on noisy data, then measure order fidelity against the
	// *noise-free* ground truth: the fitted function must recover the true
	// ordering even though the observations scrambled it slightly.
	truth := expr.Func{Form: f1Form, C: [3]float64{1, 1, 870}}
	noisy := synthSamples(truth, 250, 0.05, 26)
	ranked, err := FitAll(noisy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clean := make([]Sample, len(noisy))
	for i, s := range noisy {
		s.Score = truth.Eval(s.R, s.N, s.S)
		clean[i] = s
	}
	if rho := OrderFidelity(ranked[0].Func, clean); rho < 0.97 {
		t.Errorf("top fit order fidelity vs truth = %v, want > 0.97", rho)
	}
}
