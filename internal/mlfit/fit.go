// Package mlfit is the machine-learning half of the paper (§3.3): it fits
// every candidate nonlinear function of the expr family to the score
// distribution produced by the simulation scheme, using weighted
// least-squares regression (Eq. 4, weight r·n), and ranks the fitted
// functions by mean absolute error (Eq. 5). The four best become the
// scheduling policies F1–F4.
//
// Every function in the family is linear in *derived* coefficients (each
// multiplicative group collapses its constants into one), so the fit has a
// closed-form weighted linear least-squares solution; a Levenberg–
// Marquardt polish then runs on the original three coefficients, mirroring
// the artifact's use of SciPy leastsq and guarding against degenerate
// groupings.
package mlfit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"github.com/hpcsched/gensched/internal/expr"
	"github.com/hpcsched/gensched/internal/runner"
)

// Sample is one observation of scheduling behavior: the task's processing
// time r, cores n, arrival time s, and simulated score (§3.2, Eq. 3).
type Sample struct {
	R, N, S float64
	Score   float64
}

// Options configures the regression.
type Options struct {
	// Weight returns the regression weight of a sample; nil selects the
	// paper's r·n weighting (Eq. 4). The unweighted ablation passes a
	// constant function.
	Weight func(Sample) float64
	// Polish enables the Levenberg–Marquardt refinement after the
	// closed-form solve (default off — the closed form is already the
	// global optimum; the polish exists for validation and ablations).
	Polish bool
	// Workers bounds the fitting parallelism in FitAll;
	// 0 selects GOMAXPROCS.
	Workers int
}

// PaperWeight is the Eq. 4 weight: w(t) = r_t·n_t, emphasizing accurate
// score estimates for large tasks.
func PaperWeight(s Sample) float64 { return s.R * s.N }

// Result is one fitted candidate function.
type Result struct {
	Func      expr.Func
	Rank      float64 // Eq. 5: mean |f(r,n,s) − score| over the samples
	SSE       float64 // weighted sum of squared residuals (Eq. 4)
	Converged bool
}

// ErrNoSamples is returned when the training set is empty.
var ErrNoSamples = errors.New("mlfit: no samples")

// features is one form's per-sample view: the three base-function columns
// a = α(r), b = β(n), c = γ(s), the target y and the regression weight w.
// The columns are borrowed (from FeaturePlanes or a scratch gather), never
// owned — a fit must not write through them.
type features struct {
	a, b, c []float64
	y       []float64
	w       []float64
}

// buildFeatures computes one form's features from scratch — the slow path
// single-form fits use; FitAll and CrossValidate borrow from shared
// FeaturePlanes instead.
func buildFeatures(form expr.Form, samples []Sample, weight func(Sample) float64) features {
	n := len(samples)
	f := features{
		a: make([]float64, n), b: make([]float64, n), c: make([]float64, n),
		y: make([]float64, n), w: make([]float64, n),
	}
	for i, s := range samples {
		f.a[i], f.b[i], f.c[i] = form.Terms(s.R, s.N, s.S)
		f.y[i] = s.Score
		f.w[i] = weight(s)
	}
	return f
}

// FeaturePlanes holds the shared per-sample columns every fit of a
// training set borrows: one column per distinct expr.Base applied to each
// of r, n, s (4 bases × 3 variables = 12 columns), plus the target y and
// the regression weight w, all computed exactly once. Before the planes,
// FitAll recomputed the base transforms once per form — 576 identical
// passes over the samples; now every fit (and every cross-validation
// fold) is a column lookup. The columns are identical bit for bit to what
// buildFeatures computes, so fits borrowing planes return identical
// results. Planes are immutable after construction and safe to share
// across goroutines.
type FeaturePlanes struct {
	n    int
	base [3][expr.NumBases][]float64 // [variable r/n/s][base][sample]
	y, w []float64
}

// BuildFeaturePlanes computes the shared feature planes of a training
// set. A nil weight selects the paper's r·n weighting, as in Options.
func BuildFeaturePlanes(samples []Sample, weight func(Sample) float64) *FeaturePlanes {
	if weight == nil {
		weight = PaperWeight
	}
	n := len(samples)
	p := &FeaturePlanes{n: n, y: make([]float64, n), w: make([]float64, n)}
	for v := range p.base {
		for b := range p.base[v] {
			p.base[v][b] = make([]float64, n)
		}
	}
	for i, s := range samples {
		for b := 0; b < expr.NumBases; b++ {
			p.base[0][b][i] = expr.Base(b).Eval(s.R)
			p.base[1][b][i] = expr.Base(b).Eval(s.N)
			p.base[2][b][i] = expr.Base(b).Eval(s.S)
		}
		p.y[i] = s.Score
		p.w[i] = weight(s)
	}
	return p
}

// Len returns the number of samples the planes were built from.
func (p *FeaturePlanes) Len() int { return p.n }

// features borrows one form's columns from the planes.
func (p *FeaturePlanes) features(form expr.Form) features {
	return features{
		a: p.base[0][form.A],
		b: p.base[1][form.B],
		c: p.base[2][form.C],
		y: p.y,
		w: p.w,
	}
}

// fitScratch owns the working buffers one fitting worker reuses across
// forms: the derived-column products, the normal-equation system and the
// Levenberg–Marquardt buffers. With caller-owned scratch a full FitAll
// performs O(forms) small allocations (result bookkeeping) instead of
// O(forms × samples) column rebuilds.
type fitScratch struct {
	cols [2][]float64 // derived multiplicative-product columns
	lsq  lsqScratch
	lm   LMScratch
}

// buf returns derived-column buffer k resized to n samples.
func (sc *fitScratch) buf(k, n int) []float64 {
	if cap(sc.cols[k]) < n {
		sc.cols[k] = make([]float64, n)
	}
	return sc.cols[k][:n]
}

// derived builds the derived linear features of a form: every
// multiplicative group contributes a single feature, every additive term
// its own. expand maps the derived solution back to (c1, c2, c3). The
// product columns land in sc's buffers; a nil sc allocates fresh ones.
func derived(form expr.Form, f features, sc *fitScratch) (cols [3][]float64, ncols int, expand func([]float64) [3]float64) {
	n := len(f.y)
	// mul is only ever called with a multiplicative op; the two loops are
	// Op.Apply's OpMul and OpDiv bodies (including the zero-denominator
	// guard) with the dispatch hoisted out of the element loop.
	mul := func(op expr.Op, xs, ys, out []float64) []float64 {
		if op == expr.OpMul {
			for i := range out {
				out[i] = xs[i] * ys[i]
			}
			return out
		}
		for i := range out {
			d := ys[i]
			if d == 0 {
				d = math.SmallestNonzeroFloat64
			}
			out[i] = xs[i] / d
		}
		return out
	}
	buf := func(k int) []float64 {
		if sc == nil {
			return make([]float64, n)
		}
		return sc.buf(k, n)
	}
	op1, op2 := form.Op1, form.Op2
	switch {
	case op1 == expr.OpAdd && op2 == expr.OpAdd:
		// c1·A + c2·B + c3·C: already linear.
		return [3][]float64{f.a, f.b, f.c}, 3, func(k []float64) [3]float64 {
			return [3]float64{k[0], k[1], k[2]}
		}
	case op1 != expr.OpAdd && op2 == expr.OpAdd:
		// (c1·A ∘ c2·B) + c3·C = k1·(A∘B) + k2·C.
		return [3][]float64{mul(op1, f.a, f.b, buf(0)), f.c}, 2, func(k []float64) [3]float64 {
			return [3]float64{k[0], 1, k[1]}
		}
	case op1 == expr.OpAdd && op2 != expr.OpAdd:
		// c1·A + (c2·B ∘ c3·C) = k1·A + k2·(B∘C).
		return [3][]float64{f.a, mul(op2, f.b, f.c, buf(0))}, 2, func(k []float64) [3]float64 {
			return [3]float64{k[0], k[1], 1}
		}
	default:
		// Fully multiplicative chain: one derived coefficient.
		return [3][]float64{mul(op2, mul(op1, f.a, f.b, buf(0)), f.c, buf(1))}, 1, func(k []float64) [3]float64 {
			return [3]float64{k[0], 1, 1}
		}
	}
}

// Fit fits one candidate form to the samples and reports its Eq. 5 rank.
func Fit(form expr.Form, samples []Sample, opt Options) (Result, error) {
	if len(samples) == 0 {
		return Result{}, ErrNoSamples
	}
	weight := opt.Weight
	if weight == nil {
		weight = PaperWeight
	}
	return fitFeatures(form, buildFeatures(form, samples, weight), opt, nil), nil
}

// fitFeatures is the fitting core shared by Fit, FitAll and
// CrossValidate: closed-form weighted least squares on the derived
// features, optional Levenberg–Marquardt polish, Eq. 5 ranking. It
// performs exactly the floating-point operations the original
// one-form-at-a-time path performed, in the same order — scratch reuse
// changes where intermediates live, never their values.
func fitFeatures(form expr.Form, f features, opt Options, sc *fitScratch) Result {
	cols, ncols, expand := derived(form, f, sc)
	var lsqSc *lsqScratch
	var lmSc *LMScratch
	if sc != nil {
		lsqSc = &sc.lsq
		lmSc = &sc.lm
	}
	// The specialized combine performs Form.Combine's operations in
	// Form.Combine's order with the precedence dispatch hoisted out of the
	// per-sample loops below.
	combine := form.CombineFunc()
	k, err := weightedLSQ(cols[:ncols], f.y, f.w, lsqSc)
	coef := [3]float64{1, 1, 1}
	converged := err == nil
	if err == nil {
		coef = expand(k)
	}
	fn := expr.Func{Form: form, C: coef}
	if opt.Polish || err != nil {
		res := LevenbergMarquardt(func(c []float64, out []float64) {
			cc := [3]float64{c[0], c[1], c[2]}
			for i := range out {
				out[i] = f.w[i] * (combine(cc, f.a[i], f.b[i], f.c[i]) - f.y[i])
			}
		}, coef[:], len(f.y), LMOptions{Scratch: lmSc})
		fn.C = [3]float64{res.Coef[0], res.Coef[1], res.Coef[2]}
		converged = res.Converged
	}
	out := Result{Func: fn, Converged: converged}
	for i := range f.y {
		pred := combine(fn.C, f.a[i], f.b[i], f.c[i])
		d := pred - f.y[i]
		out.Rank += math.Abs(d)
		wd := f.w[i] * d
		out.SSE += wd * wd
	}
	out.Rank /= float64(len(f.y))
	if math.IsNaN(out.Rank) {
		out.Rank = math.Inf(1)
	}
	return out
}

// FitAll fits every form of the family (all 576) and returns the results
// sorted by ascending rank (best fit first). Ties break on the
// enumeration order, so the output is deterministic. Fitting fans out
// over the shared internal/runner pool; the base transforms, target and
// weights are computed once into shared FeaturePlanes that every worker
// borrows, and scratch buffers are recycled through a pool across forms.
func FitAll(samples []Sample, opt Options) ([]Result, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	planes := BuildFeaturePlanes(samples, opt.Weight)
	forms := expr.Enumerate()
	results := make([]Result, len(forms))
	// Fan out through the shared deterministic pool: each form's result
	// lands in its own slot, so worker count and interleaving cannot
	// reach the output. Workers borrow scratch from a pool instead of
	// owning one per goroutine, keeping the fit allocation-lean.
	scratch := sync.Pool{New: func() any { return new(fitScratch) }}
	err := runner.Run(context.Background(), opt.Workers, len(forms), func(_ context.Context, i int) error {
		sc := scratch.Get().(*fitScratch)
		results[i] = fitFeatures(forms[i], planes.features(forms[i]), opt, sc)
		scratch.Put(sc)
		return nil
	})
	if err != nil {
		return nil, err
	}
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return results[order[x]].Rank < results[order[y]].Rank
	})
	sorted := make([]Result, len(results))
	for i, idx := range order {
		sorted[i] = results[idx]
	}
	return sorted, nil
}

// TopDistinct filters ranked results down to the first count functions
// that are *behaviorally* distinct, dropping the algebraically equivalent
// duplicates the enumeration necessarily contains (the artifact notes
// equivalent functions share a fitness value; e.g. r/(1/n) ≡ r·n, and
// both fits land on identical predictions). Equivalence is detected by
// fingerprinting each fitted function's normalized outputs on a fixed
// probe grid — robust against purely syntactic differences.
func TopDistinct(results []Result, count int) []Result {
	seen := make(map[string]bool)
	var out []Result
	for _, r := range results {
		key := fingerprint(r.Func)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
		if len(out) == count {
			break
		}
	}
	return out
}

// probeGrid spans the training ranges of (r, n, s).
var probeGrid = func() [][3]float64 {
	rs := []float64{1, 60, 3600, 27000}
	ns := []float64{1, 8, 64, 256}
	ss := []float64{1, 3600, 43200, 86400}
	var pts [][3]float64
	for i, r := range rs {
		for j, n := range ns {
			// A diagonal slice keeps the grid small but exercises all axes.
			pts = append(pts, [3]float64{r, n, ss[(i+j)%len(ss)]})
		}
	}
	return pts
}()

// fingerprint encodes a function's shape: its probe-grid outputs shifted
// and scaled to [0,1] (so order-preserving rescales collapse to one key)
// and quantized to absorb float noise.
func fingerprint(f expr.Func) string {
	vals := make([]float64, len(probeGrid))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, p := range probeGrid {
		v := f.Eval(p[0], p[1], p[2])
		vals[i] = v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span <= 0 || math.IsNaN(span) || math.IsInf(span, 0) {
		span = 1
	}
	var sb strings.Builder
	for _, v := range vals {
		q := int64(math.Round((v - lo) / span * 1e5))
		fmt.Fprintf(&sb, "%d,", q)
	}
	return sb.String()
}
