// Package mlfit is the machine-learning half of the paper (§3.3): it fits
// every candidate nonlinear function of the expr family to the score
// distribution produced by the simulation scheme, using weighted
// least-squares regression (Eq. 4, weight r·n), and ranks the fitted
// functions by mean absolute error (Eq. 5). The four best become the
// scheduling policies F1–F4.
//
// Every function in the family is linear in *derived* coefficients (each
// multiplicative group collapses its constants into one), so the fit has a
// closed-form weighted linear least-squares solution; a Levenberg–
// Marquardt polish then runs on the original three coefficients, mirroring
// the artifact's use of SciPy leastsq and guarding against degenerate
// groupings.
package mlfit

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/hpcsched/gensched/internal/expr"
)

// Sample is one observation of scheduling behavior: the task's processing
// time r, cores n, arrival time s, and simulated score (§3.2, Eq. 3).
type Sample struct {
	R, N, S float64
	Score   float64
}

// Options configures the regression.
type Options struct {
	// Weight returns the regression weight of a sample; nil selects the
	// paper's r·n weighting (Eq. 4). The unweighted ablation passes a
	// constant function.
	Weight func(Sample) float64
	// Polish enables the Levenberg–Marquardt refinement after the
	// closed-form solve (default off — the closed form is already the
	// global optimum; the polish exists for validation and ablations).
	Polish bool
	// Workers bounds the fitting parallelism in FitAll;
	// 0 selects GOMAXPROCS.
	Workers int
}

// PaperWeight is the Eq. 4 weight: w(t) = r_t·n_t, emphasizing accurate
// score estimates for large tasks.
func PaperWeight(s Sample) float64 { return s.R * s.N }

// Result is one fitted candidate function.
type Result struct {
	Func      expr.Func
	Rank      float64 // Eq. 5: mean |f(r,n,s) − score| over the samples
	SSE       float64 // weighted sum of squared residuals (Eq. 4)
	Converged bool
}

// ErrNoSamples is returned when the training set is empty.
var ErrNoSamples = errors.New("mlfit: no samples")

// features precomputes the base-function values of each sample for a form.
type features struct {
	a, b, c []float64
	y       []float64
	w       []float64
}

func buildFeatures(form expr.Form, samples []Sample, weight func(Sample) float64) features {
	n := len(samples)
	f := features{
		a: make([]float64, n), b: make([]float64, n), c: make([]float64, n),
		y: make([]float64, n), w: make([]float64, n),
	}
	for i, s := range samples {
		f.a[i], f.b[i], f.c[i] = form.Terms(s.R, s.N, s.S)
		f.y[i] = s.Score
		f.w[i] = weight(s)
	}
	return f
}

// derived builds the derived linear features of a form: every
// multiplicative group contributes a single feature, every additive term
// its own. expand maps the derived solution back to (c1, c2, c3).
func derived(form expr.Form, f features) (cols [][]float64, expand func([]float64) [3]float64) {
	n := len(f.y)
	mul := func(op expr.Op, xs, ys []float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = op.Apply(xs[i], ys[i])
		}
		return out
	}
	op1, op2 := form.Op1, form.Op2
	switch {
	case op1 == expr.OpAdd && op2 == expr.OpAdd:
		// c1·A + c2·B + c3·C: already linear.
		return [][]float64{f.a, f.b, f.c}, func(k []float64) [3]float64 {
			return [3]float64{k[0], k[1], k[2]}
		}
	case op1 != expr.OpAdd && op2 == expr.OpAdd:
		// (c1·A ∘ c2·B) + c3·C = k1·(A∘B) + k2·C.
		return [][]float64{mul(op1, f.a, f.b), f.c}, func(k []float64) [3]float64 {
			return [3]float64{k[0], 1, k[1]}
		}
	case op1 == expr.OpAdd && op2 != expr.OpAdd:
		// c1·A + (c2·B ∘ c3·C) = k1·A + k2·(B∘C).
		return [][]float64{f.a, mul(op2, f.b, f.c)}, func(k []float64) [3]float64 {
			return [3]float64{k[0], k[1], 1}
		}
	default:
		// Fully multiplicative chain: one derived coefficient.
		return [][]float64{mul(op2, mul(op1, f.a, f.b), f.c)}, func(k []float64) [3]float64 {
			return [3]float64{k[0], 1, 1}
		}
	}
}

// Fit fits one candidate form to the samples and reports its Eq. 5 rank.
func Fit(form expr.Form, samples []Sample, opt Options) (Result, error) {
	if len(samples) == 0 {
		return Result{}, ErrNoSamples
	}
	weight := opt.Weight
	if weight == nil {
		weight = PaperWeight
	}
	f := buildFeatures(form, samples, weight)
	cols, expand := derived(form, f)
	k, err := weightedLSQ(cols, f.y, f.w)
	coef := [3]float64{1, 1, 1}
	converged := err == nil
	if err == nil {
		coef = expand(k)
	}
	fn := expr.Func{Form: form, C: coef}
	if opt.Polish || err != nil {
		res := LevenbergMarquardt(func(c []float64, out []float64) {
			cc := [3]float64{c[0], c[1], c[2]}
			for i := range out {
				out[i] = f.w[i] * (form.Combine(cc, f.a[i], f.b[i], f.c[i]) - f.y[i])
			}
		}, coef[:], len(samples), LMOptions{})
		fn.C = [3]float64{res.Coef[0], res.Coef[1], res.Coef[2]}
		converged = res.Converged
	}
	out := Result{Func: fn, Converged: converged}
	for i := range f.y {
		pred := form.Combine(fn.C, f.a[i], f.b[i], f.c[i])
		d := pred - f.y[i]
		out.Rank += math.Abs(d)
		wd := f.w[i] * d
		out.SSE += wd * wd
	}
	out.Rank /= float64(len(f.y))
	if math.IsNaN(out.Rank) {
		out.Rank = math.Inf(1)
	}
	return out, nil
}

// FitAll fits every form of the family (all 576) and returns the results
// sorted by ascending rank (best fit first). Ties break on the
// enumeration order, so the output is deterministic. Fitting fans out
// over a bounded worker pool.
func FitAll(samples []Sample, opt Options) ([]Result, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	forms := expr.Enumerate()
	results := make([]Result, len(forms))
	errs := make([]error, len(forms))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i], errs[i] = Fit(forms[i], samples, opt)
			}
		}()
	}
	for i := range forms {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mlfit: form %v: %w", forms[i], err)
		}
	}
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return results[order[x]].Rank < results[order[y]].Rank
	})
	sorted := make([]Result, len(results))
	for i, idx := range order {
		sorted[i] = results[idx]
	}
	return sorted, nil
}

// TopDistinct filters ranked results down to the first count functions
// that are *behaviorally* distinct, dropping the algebraically equivalent
// duplicates the enumeration necessarily contains (the artifact notes
// equivalent functions share a fitness value; e.g. r/(1/n) ≡ r·n, and
// both fits land on identical predictions). Equivalence is detected by
// fingerprinting each fitted function's normalized outputs on a fixed
// probe grid — robust against purely syntactic differences.
func TopDistinct(results []Result, count int) []Result {
	seen := make(map[string]bool)
	var out []Result
	for _, r := range results {
		key := fingerprint(r.Func)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
		if len(out) == count {
			break
		}
	}
	return out
}

// probeGrid spans the training ranges of (r, n, s).
var probeGrid = func() [][3]float64 {
	rs := []float64{1, 60, 3600, 27000}
	ns := []float64{1, 8, 64, 256}
	ss := []float64{1, 3600, 43200, 86400}
	var pts [][3]float64
	for i, r := range rs {
		for j, n := range ns {
			// A diagonal slice keeps the grid small but exercises all axes.
			pts = append(pts, [3]float64{r, n, ss[(i+j)%len(ss)]})
		}
	}
	return pts
}()

// fingerprint encodes a function's shape: its probe-grid outputs shifted
// and scaled to [0,1] (so order-preserving rescales collapse to one key)
// and quantized to absorb float noise.
func fingerprint(f expr.Func) string {
	vals := make([]float64, len(probeGrid))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, p := range probeGrid {
		v := f.Eval(p[0], p[1], p[2])
		vals[i] = v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span <= 0 || math.IsNaN(span) || math.IsInf(span, 0) {
		span = 1
	}
	var sb strings.Builder
	for _, v := range vals {
		q := int64(math.Round((v - lo) / span * 1e5))
		fmt.Fprintf(&sb, "%d,", q)
	}
	return sb.String()
}
