package trainer

import (
	"os"
	"path/filepath"
	"testing"
)

func testCampaign(t *testing.T) Campaign {
	t.Helper()
	spec := smallSpec()
	return Campaign{
		Dir:    t.TempDir(),
		Spec:   spec,
		Trials: TrialConfig{Trials: 64},
		Seed:   31,
	}
}

func TestCampaignRunAndGather(t *testing.T) {
	c := testCampaign(t)
	if err := c.Run(0, 3); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"task-sets", "training-data"} {
		entries, err := os.ReadDir(filepath.Join(c.Dir, sub))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 3 {
			t.Fatalf("%s holds %d files, want 3", sub, len(entries))
		}
	}
	samples, err := Gather(c.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3*c.Spec.QSize {
		t.Fatalf("gathered %d samples, want %d", len(samples), 3*c.Spec.QSize)
	}
}

func TestCampaignResume(t *testing.T) {
	// Running [0,2) then [2,4) must equal running [0,4) in one go.
	a := testCampaign(t)
	if err := a.Run(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Run(2, 2); err != nil {
		t.Fatal(err)
	}
	b := testCampaign(t)
	b.Seed = a.Seed
	if err := b.Run(0, 4); err != nil {
		t.Fatal(err)
	}
	sa, err := Gather(a.Dir)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Gather(b.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != len(sb) {
		t.Fatalf("lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sample %d differs between resumed and single-shot campaigns", i)
		}
	}
}

func TestCampaignReproducibleFiles(t *testing.T) {
	a := testCampaign(t)
	if err := a.Run(1, 1); err != nil {
		t.Fatal(err)
	}
	b := testCampaign(t)
	b.Seed = a.Seed
	if err := b.Run(1, 1); err != nil {
		t.Fatal(err)
	}
	fa, err := os.ReadFile(filepath.Join(a.Dir, "training-data", "tuple-0001.csv"))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(filepath.Join(b.Dir, "training-data", "tuple-0001.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(fa) != string(fb) {
		t.Error("same (seed, index) produced different tuple files")
	}
}

func TestCampaignErrors(t *testing.T) {
	c := testCampaign(t)
	if err := c.Run(0, 0); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Gather(t.TempDir()); err == nil {
		t.Error("gather on empty dir succeeded")
	}
}
