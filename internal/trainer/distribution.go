package trainer

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/mlfit"
	"github.com/hpcsched/gensched/internal/stats"
)

// newTrialRNG derives the RNG of one trial from the distribution seed and
// the trial index, so trials are independent and reproducible.
func newTrialRNG(seed, trial uint64) *dist.RNG {
	return dist.New(dist.Split(seed, trial))
}

// ScoreDistribution draws nTuples tuples and concatenates their samples:
// this is the training set Tr, the score(r, n, s) distribution of §3.2.
// Tuple i uses sub-seed Split(seed, i) for generation and scoring.
func ScoreDistribution(nTuples int, spec TupleSpec, cfg TrialConfig, seed uint64) ([]mlfit.Sample, error) {
	if nTuples <= 0 {
		return nil, fmt.Errorf("trainer: tuple count must be positive, got %d", nTuples)
	}
	var samples []mlfit.Sample
	for i := 0; i < nTuples; i++ {
		sub := dist.Split(seed, uint64(i))
		tuple, err := GenerateTuple(spec, sub)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Seed = dist.Split(sub, 1)
		ts, err := ScoreTuple(tuple, c)
		if err != nil {
			return nil, err
		}
		samples = append(samples, ts.Samples...)
	}
	return samples, nil
}

// Convergence reproduces the Figure 2 study: for each trial count, score
// the same tuple reps times with different seeds, measure each task's
// score standard deviation across repetitions, average over tasks, and
// normalize by the value at the first (smallest) count. The returned
// series starts at 1.0 and drops toward 0 as trials grow.
func Convergence(t Tuple, counts []int, reps int, cfg TrialConfig) ([]float64, error) {
	if len(counts) == 0 || reps < 2 {
		return nil, fmt.Errorf("trainer: convergence needs counts and reps >= 2")
	}
	raw := make([]float64, len(counts))
	for ci, count := range counts {
		perTask := make([][]float64, len(t.Q))
		for rep := 0; rep < reps; rep++ {
			c := cfg
			c.Trials = count
			c.Seed = dist.Split(cfg.Seed, uint64(ci*10007+rep))
			ts, err := ScoreTuple(t, c)
			if err != nil {
				return nil, err
			}
			for i, s := range ts.Scores {
				perTask[i] = append(perTask[i], s)
			}
		}
		var sum float64
		for _, xs := range perTask {
			sum += stats.SampleStdDev(xs)
		}
		raw[ci] = sum / float64(len(perTask))
	}
	norm := raw[0]
	if norm <= 0 {
		return raw, nil
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = v / norm
	}
	return out, nil
}

// WriteScoreCSV writes samples in the artifact's score-distribution.csv
// format: "runtime,#processors,submit time,score", one task per line, no
// header.
func WriteScoreCSV(w io.Writer, samples []mlfit.Sample) error {
	bw := bufio.NewWriter(w)
	for _, s := range samples {
		if _, err := fmt.Fprintf(bw, "%g,%g,%g,%g\n", s.R, s.N, s.S, s.Score); err != nil {
			return fmt.Errorf("trainer: writing csv: %w", err)
		}
	}
	return bw.Flush()
}

// ReadScoreCSV parses the artifact CSV format back into samples.
func ReadScoreCSV(r io.Reader) ([]mlfit.Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []mlfit.Sample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("trainer: csv line %d: %d fields, want 4", lineNo, len(parts))
		}
		var vals [4]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("trainer: csv line %d field %d: %w", lineNo, i+1, err)
			}
			vals[i] = v
		}
		out = append(out, mlfit.Sample{R: vals[0], N: vals[1], S: vals[2], Score: vals[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trainer: reading csv: %w", err)
	}
	return out, nil
}
