package trainer

import (
	"fmt"
	"math"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/workload"
)

// SampleTuple draws one (S, Q) training tuple by bootstrap-resampling an
// observed job window instead of the Lublin model — the window-matched
// counterpart of GenerateTuple that the adaptive retraining loop uses.
// Task characteristics (runtime, estimate, cores) are resampled uniformly
// with replacement from the window, so the tuple's r/n marginals and their
// correlation match the recently observed traffic; Q arrival times are the
// cumulative sum of gaps resampled from the window's empirical
// inter-arrival distribution, so the offered load matches too. As in
// GenerateTuple, S establishes a realistic initial resource state and Q is
// the measured task set.
//
// The tuple is anchored at the window's own epoch: S is released at the
// window's first submit time and Q accumulates from there. Policies score
// the absolute arrival time s, so coefficients fitted against rebased-to-
// zero arrivals would be calibrated to the wrong s scale and transfer
// poorly to the very window the candidate is then shadow-evaluated and
// deployed on.
//
// The window is expected in submit order (the sliding windows the
// adaptive loop maintains are; mildly out-of-order submits are treated as
// simultaneous) and must hold at least two jobs; core requests larger
// than the training machine are clamped. All randomness derives from the
// seed, so a tuple is reproducible bit for bit.
func SampleTuple(window []workload.Job, sSize, qSize, cores int, seed uint64) (Tuple, error) {
	if sSize < 0 || qSize <= 0 {
		return Tuple{}, fmt.Errorf("trainer: need positive |Q| and non-negative |S| (got %d, %d)", sSize, qSize)
	}
	if cores <= 0 {
		return Tuple{}, fmt.Errorf("trainer: sample tuple needs a positive machine size, got %d", cores)
	}
	if len(window) < 2 {
		return Tuple{}, fmt.Errorf("trainer: sample tuple needs at least 2 observed jobs, got %d", len(window))
	}
	gaps := make([]float64, 0, len(window)-1)
	for i := 1; i < len(window); i++ {
		// Live streams may record mildly out-of-order submits (backdated
		// requests); a negative gap is treated as simultaneous arrival.
		gaps = append(gaps, math.Max(window[i].Submit-window[i-1].Submit, 0))
	}
	rng := dist.New(seed)
	draw := func(id int, submit float64) workload.Job {
		src := window[rng.IntN(len(window))]
		j := workload.Job{
			ID:       id,
			Submit:   submit,
			Runtime:  src.Runtime,
			Estimate: src.Estimate,
			Cores:    src.Cores,
		}
		if j.Cores > cores {
			j.Cores = cores
		}
		return j
	}
	t := Tuple{Cores: cores}
	base := window[0].Submit
	for i := 0; i < sSize; i++ {
		t.S = append(t.S, draw(i+1, base))
	}
	at := base
	for i := 0; i < qSize; i++ {
		at += gaps[rng.IntN(len(gaps))]
		t.Q = append(t.Q, draw(sSize+i+1, at))
	}
	return t, nil
}
