package trainer

import (
	"testing"

	"github.com/hpcsched/gensched/internal/workload"
)

func observedWindow() []workload.Job {
	// A small observed window with distinctive values, in submit order.
	return []workload.Job{
		{ID: 1, Submit: 0, Runtime: 100, Estimate: 120, Cores: 2},
		{ID: 2, Submit: 30, Runtime: 900, Estimate: 1000, Cores: 8},
		{ID: 3, Submit: 90, Runtime: 50, Estimate: 60, Cores: 4},
		{ID: 4, Submit: 100, Runtime: 3000, Estimate: 3600, Cores: 64},
		{ID: 5, Submit: 250, Runtime: 10, Estimate: 15, Cores: 1},
	}
}

func TestSampleTupleStructure(t *testing.T) {
	win := observedWindow()
	tuple, err := SampleTuple(win, 4, 8, 32, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuple.S) != 4 || len(tuple.Q) != 8 || tuple.Cores != 32 {
		t.Fatalf("tuple shape: |S|=%d |Q|=%d cores=%d", len(tuple.S), len(tuple.Q), tuple.Cores)
	}
	// Characteristics are resampled from the window; cores are clamped to
	// the training machine (the 64-core job fits a 32-core machine).
	fromWindow := func(j workload.Job) bool {
		for _, src := range win {
			clamped := src.Cores
			if clamped > 32 {
				clamped = 32
			}
			if j.Runtime == src.Runtime && j.Estimate == src.Estimate && j.Cores == clamped {
				return true
			}
		}
		return false
	}
	ids := make(map[int]bool)
	for _, j := range append(append([]workload.Job(nil), tuple.S...), tuple.Q...) {
		if !fromWindow(j) {
			t.Fatalf("job %+v not drawn from the window", j)
		}
		if j.Cores > 32 {
			t.Fatalf("job %+v exceeds the training machine", j)
		}
		if ids[j.ID] {
			t.Fatalf("duplicate tuple job ID %d", j.ID)
		}
		ids[j.ID] = true
	}
	// S establishes the initial resource state at the window's epoch; Q
	// arrivals are cumulative resampled gaps, so they are nondecreasing.
	for _, j := range tuple.S {
		if j.Submit != win[0].Submit {
			t.Fatalf("S job submitted at %g, want the window epoch %g", j.Submit, win[0].Submit)
		}
	}
	prev := win[0].Submit
	for _, j := range tuple.Q {
		if j.Submit < prev {
			t.Fatalf("Q submits not nondecreasing: %g after %g", j.Submit, prev)
		}
		prev = j.Submit
	}
}

func TestSampleTupleAnchoredAtWindowEpoch(t *testing.T) {
	// A window observed deep into a stream keeps its absolute s scale:
	// fitted s-coefficients must be calibrated to the values the policy
	// will actually score.
	win := observedWindow()
	for i := range win {
		win[i].Submit += 7e5
	}
	tuple, err := SampleTuple(win, 2, 6, 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tuple.S {
		if j.Submit != 7e5 {
			t.Fatalf("S anchored at %g, want 7e5", j.Submit)
		}
	}
	for _, j := range tuple.Q {
		if j.Submit < 7e5 || j.Submit > 7e5+5*250 {
			t.Fatalf("Q submit %g outside the window's time scale", j.Submit)
		}
	}
}

func TestSampleTupleDeterministic(t *testing.T) {
	win := observedWindow()
	a, err := SampleTuple(win, 3, 6, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleTuple(win, 3, 6, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.S {
		if a.S[i] != b.S[i] {
			t.Fatalf("S[%d] differs across identical seeds", i)
		}
	}
	for i := range a.Q {
		if a.Q[i] != b.Q[i] {
			t.Fatalf("Q[%d] differs across identical seeds", i)
		}
	}
	c, err := SampleTuple(win, 3, 6, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Q {
		if a.Q[i].Runtime != c.Q[i].Runtime || a.Q[i].Submit != c.Q[i].Submit {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical tuple")
	}
}

func TestSampleTupleScores(t *testing.T) {
	// A window-matched tuple feeds the standard trial machinery unchanged.
	tuple, err := SampleTuple(observedWindow(), 2, 4, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := ScoreTuple(tuple, TrialConfig{Trials: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range ts.Scores {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("scores sum to %g, want 1 (the Eq. 3 invariant)", sum)
	}
}

func TestSampleTupleErrors(t *testing.T) {
	win := observedWindow()
	if _, err := SampleTuple(win, -1, 4, 64, 1); err == nil {
		t.Error("negative |S| accepted")
	}
	if _, err := SampleTuple(win, 2, 0, 64, 1); err == nil {
		t.Error("zero |Q| accepted")
	}
	if _, err := SampleTuple(win, 2, 4, 0, 1); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := SampleTuple(win[:1], 2, 4, 64, 1); err == nil {
		t.Error("single-job window accepted")
	}
}
