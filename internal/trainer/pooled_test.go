package trainer

import (
	"math"
	"testing"

	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/workload"
)

func defaultParams64() lublin.Params { return lublin.DefaultParams(64) }

// oracleTrial replays one permutation trial exactly the way the
// pre-pooling implementation did — a fresh sim.Run per trial with a
// sched.FixedOrder rank map — and returns its AVEbsld over Q.
func oracleTrial(t Tuple, tau float64, k, q int, seed uint64) (float64, error) {
	var jobs = append(append([]workload.Job{}, t.S...), t.Q...)
	qIDs := make(map[int]bool, len(t.Q))
	for _, j := range t.Q {
		qIDs[j.ID] = true
	}
	rng := newTrialRNG(seed, uint64(k))
	first := k % q
	perm := make([]int, q)
	perm[0] = first
	idx := 1
	for i := 0; i < q; i++ {
		if i != first {
			perm[idx] = i
			idx++
		}
	}
	rest := perm[1:]
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	rank := make(map[int]int, len(jobs))
	for i, j := range t.S {
		rank[j.ID] = i
	}
	base := len(t.S)
	for pos, qi := range perm {
		rank[t.Q[qi].ID] = base + pos
	}
	res, err := sim.Run(sim.Platform{Cores: t.Cores}, jobs, sim.Options{
		Policy: sched.FixedOrder(rank),
		Tau:    tau,
	})
	if err != nil {
		return 0, err
	}
	return sim.AveBsld(res.Stats, func(s sim.JobStats) bool { return qIDs[s.Job.ID] }), nil
}

// scoreTupleOracle reduces oracle trials exactly as ScoreTuple reduces
// pooled ones.
func scoreTupleOracle(t *testing.T, tuple Tuple, cfg TrialConfig) *TupleScores {
	t.Helper()
	q := len(tuple.Q)
	perTask := (cfg.Trials + q - 1) / q
	total := perTask * q
	aveBsld := make([]float64, total)
	for k := 0; k < total; k++ {
		v, err := oracleTrial(tuple, cfg.Tau, k, q, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		aveBsld[k] = v
	}
	sums := make([]float64, q)
	var grand float64
	for k, v := range aveBsld {
		sums[k%q] += v
		grand += v
	}
	out := &TupleScores{Tuple: tuple, Scores: make([]float64, q)}
	for i := range sums {
		score := 0.0
		if grand > 0 {
			score = sums[i] / grand
		}
		out.Scores[i] = score
	}
	return out
}

// TestScoreTuplePooledMatchesSimRun is the differential harness for the
// pooled trial engine: scores must be bit-identical to the fresh
// sim.Run-per-trial path it replaced, for dense sequential job IDs, for
// sparse IDs beyond the dense-table limit (the map fallback), and with
// a non-default tau.
func TestScoreTuplePooledMatchesSimRun(t *testing.T) {
	base, err := GenerateTuple(TupleSpec{SSize: 8, QSize: 12, Cores: 64, Params: defaultParams64()}, 17)
	if err != nil {
		t.Fatal(err)
	}
	sparse := Tuple{Cores: base.Cores}
	for _, j := range base.S {
		j.ID = j.ID*1_000_003 + denseIDLimit // far beyond the dense table
		sparse.S = append(sparse.S, j)
	}
	for _, j := range base.Q {
		j.ID = j.ID*1_000_003 + denseIDLimit
		sparse.Q = append(sparse.Q, j)
	}
	cases := []struct {
		name  string
		tuple Tuple
		cfg   TrialConfig
	}{
		{"dense", base, TrialConfig{Trials: 36, Seed: 5}},
		{"dense-tau", base, TrialConfig{Trials: 24, Seed: 9, Tau: 60}},
		{"sparse-ids", sparse, TrialConfig{Trials: 24, Seed: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ScoreTuple(tc.tuple, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := scoreTupleOracle(t, tc.tuple, tc.cfg)
			for i := range want.Scores {
				if math.Float64bits(got.Scores[i]) != math.Float64bits(want.Scores[i]) {
					t.Fatalf("task %d: pooled score %v != oracle %v", i, got.Scores[i], want.Scores[i])
				}
			}
		})
	}
}

// TestScoreTupleValidatesUpFront pins the hoisted validation: a malformed
// tuple fails before any trial runs.
func TestScoreTupleValidatesUpFront(t *testing.T) {
	tuple, err := GenerateTuple(TupleSpec{SSize: 2, QSize: 4, Cores: 64, Params: defaultParams64()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	tuple.Q[1].Cores = tuple.Cores + 1 // larger than the machine
	if _, err := ScoreTuple(tuple, TrialConfig{Trials: 8, Seed: 1}); err == nil {
		t.Fatal("oversized job accepted")
	}
}

// TestScoreTupleRejectsNonPositiveCores pins the guard the per-trial
// sim.Run used to provide: a machine without cores is an error, never a
// silent batch of uniform garbage scores.
func TestScoreTupleRejectsNonPositiveCores(t *testing.T) {
	tuple, err := GenerateTuple(TupleSpec{SSize: 2, QSize: 4, Cores: 64, Params: defaultParams64()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{0, -8} {
		tuple.Cores = cores
		if _, err := ScoreTuple(tuple, TrialConfig{Trials: 8, Seed: 1}); err == nil {
			t.Fatalf("cores=%d accepted", cores)
		}
	}
}

// TestScoreTupleRejectsDuplicateIDs pins the uniqueness check: ranks and
// scores are keyed by job ID, so an S/Q ID collision is an input error,
// not a silent semantics change.
func TestScoreTupleRejectsDuplicateIDs(t *testing.T) {
	tuple, err := GenerateTuple(TupleSpec{SSize: 2, QSize: 4, Cores: 64, Params: defaultParams64()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	tuple.S[0].ID = tuple.Q[2].ID
	if _, err := ScoreTuple(tuple, TrialConfig{Trials: 8, Seed: 1}); err == nil {
		t.Fatal("duplicate job ID accepted")
	}
}

// TestScoreTupleNegativeIDs drives the pooled path with negative job IDs —
// they must take the map fallback (not panic on a negative slice index)
// and still match the sim.Run oracle bit for bit.
func TestScoreTupleNegativeIDs(t *testing.T) {
	base, err := GenerateTuple(TupleSpec{SSize: 4, QSize: 6, Cores: 64, Params: defaultParams64()}, 11)
	if err != nil {
		t.Fatal(err)
	}
	neg := Tuple{Cores: base.Cores}
	for _, j := range base.S {
		j.ID = -j.ID
		neg.S = append(neg.S, j)
	}
	for _, j := range base.Q {
		j.ID = -j.ID
		neg.Q = append(neg.Q, j)
	}
	cfg := TrialConfig{Trials: 18, Seed: 2}
	got, err := ScoreTuple(neg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := scoreTupleOracle(t, neg, cfg)
	for i := range want.Scores {
		if math.Float64bits(got.Scores[i]) != math.Float64bits(want.Scores[i]) {
			t.Fatalf("task %d: pooled score %v != oracle %v", i, got.Scores[i], want.Scores[i])
		}
	}
}
