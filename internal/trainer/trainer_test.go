package trainer

import (
	"bytes"
	"math"
	"testing"

	"github.com/hpcsched/gensched/internal/mlfit"
)

func smallSpec() TupleSpec {
	s := DefaultSpec()
	s.SSize, s.QSize, s.Cores = 8, 16, 64
	p := s.Params
	s.Params = p
	return s
}

func TestGenerateTuple(t *testing.T) {
	spec := DefaultSpec()
	tuple, err := GenerateTuple(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuple.S) != 16 || len(tuple.Q) != 32 {
		t.Fatalf("|S| = %d, |Q| = %d; want 16, 32", len(tuple.S), len(tuple.Q))
	}
	for _, j := range tuple.S {
		if j.Submit != 0 {
			t.Error("S tasks must be released at t=0")
		}
	}
	prev := 0.0
	for _, j := range tuple.Q {
		if j.Submit <= 0 {
			t.Error("Q tasks must arrive after the start")
		}
		if j.Submit < prev {
			t.Error("Q arrivals must be ordered")
		}
		prev = j.Submit
		if j.Cores < 1 || j.Cores > 256 {
			t.Errorf("Q task cores = %d", j.Cores)
		}
	}
	// IDs unique across S and Q.
	seen := map[int]bool{}
	for _, j := range tuple.S {
		seen[j.ID] = true
	}
	for _, j := range tuple.Q {
		if seen[j.ID] {
			t.Fatalf("duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
	}
}

func TestGenerateTupleErrors(t *testing.T) {
	spec := DefaultSpec()
	spec.QSize = 0
	if _, err := GenerateTuple(spec, 1); err == nil {
		t.Error("zero |Q| accepted")
	}
}

func TestScoreTupleInvariants(t *testing.T) {
	tuple, err := GenerateTuple(smallSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := ScoreTuple(tuple, TrialConfig{Trials: 320, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Scores) != len(tuple.Q) {
		t.Fatalf("got %d scores, want %d", len(ts.Scores), len(tuple.Q))
	}
	var sum float64
	for i, s := range ts.Scores {
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("score[%d] = %v", i, s)
		}
		sum += s
	}
	// Balanced trials make the scores a partition of the total AVEbsld.
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σ scores = %v, want 1", sum)
	}
	// Samples mirror the Q tasks.
	for i, s := range ts.Samples {
		j := tuple.Q[i]
		if s.R != j.Runtime || s.N != float64(j.Cores) || s.S != j.Submit || s.Score != ts.Scores[i] {
			t.Fatalf("sample %d does not match its task", i)
		}
	}
}

func TestScoreTupleDeterministicAcrossWorkers(t *testing.T) {
	tuple, err := GenerateTuple(smallSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ScoreTuple(tuple, TrialConfig{Trials: 160, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScoreTuple(tuple, TrialConfig{Trials: 160, Seed: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("score %d differs across worker counts: %v vs %v", i, a.Scores[i], b.Scores[i])
		}
	}
}

func TestScoreTupleErrors(t *testing.T) {
	tuple, _ := GenerateTuple(smallSpec(), 3)
	if _, err := ScoreTuple(tuple, TrialConfig{Trials: 0}); err != ErrNoTrials {
		t.Errorf("err = %v, want ErrNoTrials", err)
	}
	if _, err := ScoreTuple(Tuple{Cores: 8}, TrialConfig{Trials: 10}); err != ErrEmptyQ {
		t.Errorf("err = %v, want ErrEmptyQ", err)
	}
}

func TestScoresReflectTaskSize(t *testing.T) {
	// Large long tasks must on average receive higher (worse) scores than
	// small short tasks: putting a big task first blocks the machine.
	spec := smallSpec()
	var small, large []float64
	for seed := uint64(0); seed < 6; seed++ {
		tuple, err := GenerateTuple(spec, 100+seed)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := ScoreTuple(tuple, TrialConfig{Trials: 480, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range ts.Scores {
			area := tuple.Q[i].Runtime * float64(tuple.Q[i].Cores)
			if area < 2000 {
				small = append(small, s)
			} else if area > 100000 {
				large = append(large, s)
			}
		}
	}
	if len(small) < 5 || len(large) < 5 {
		t.Skipf("degenerate split: %d small, %d large", len(small), len(large))
	}
	meanSmall := mean(small)
	meanLarge := mean(large)
	if meanSmall >= meanLarge {
		t.Errorf("small-task mean score %v not below large-task %v", meanSmall, meanLarge)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestScoreDistribution(t *testing.T) {
	spec := smallSpec()
	samples, err := ScoreDistribution(3, spec, TrialConfig{Trials: 160}, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3*spec.QSize {
		t.Fatalf("got %d samples, want %d", len(samples), 3*spec.QSize)
	}
	// Per-tuple groups each sum to 1.
	for g := 0; g < 3; g++ {
		var sum float64
		for i := 0; i < spec.QSize; i++ {
			sum += samples[g*spec.QSize+i].Score
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("tuple %d scores sum to %v", g, sum)
		}
	}
	if _, err := ScoreDistribution(0, spec, TrialConfig{Trials: 10}, 1); err == nil {
		t.Error("zero tuples accepted")
	}
}

func TestConvergenceDecreases(t *testing.T) {
	tuple, err := GenerateTuple(smallSpec(), 13)
	if err != nil {
		t.Fatal(err)
	}
	series, err := Convergence(tuple, []int{32, 128, 512}, 4, TrialConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d points", len(series))
	}
	if math.Abs(series[0]-1) > 1e-12 {
		t.Errorf("series[0] = %v, want 1 (normalized)", series[0])
	}
	if series[2] >= series[0] {
		t.Errorf("stddev did not decrease with trials: %v", series)
	}
	if _, err := Convergence(tuple, nil, 4, TrialConfig{}); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := Convergence(tuple, []int{10}, 1, TrialConfig{}); err == nil {
		t.Error("single rep accepted")
	}
}

func TestScoreCSVRoundTrip(t *testing.T) {
	in := []mlfit.Sample{
		{R: 50, N: 8, S: 88224, Score: 0.0347251055192},
		{R: 3, N: 4, S: 88302, Score: 0.0292281817457},
		{R: 7298, N: 58, S: 88334, Score: 0.0350921606481},
	}
	var buf bytes.Buffer
	if err := WriteScoreCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadScoreCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("sample %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestReadScoreCSVErrors(t *testing.T) {
	if _, err := ReadScoreCSV(bytes.NewBufferString("1,2,3\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ReadScoreCSV(bytes.NewBufferString("a,b,c,d\n")); err == nil {
		t.Error("non-numeric accepted")
	}
	// Comments and blanks are skipped.
	out, err := ReadScoreCSV(bytes.NewBufferString("# header\n\n1,2,3,0.5\n"))
	if err != nil || len(out) != 1 {
		t.Errorf("out = %v, err = %v", out, err)
	}
}

func TestEndToEndTrainingPipeline(t *testing.T) {
	// Miniature version of the whole §3 pipeline: simulate, score, fit,
	// and confirm the best function prefers small early tasks like F1-F4.
	spec := smallSpec()
	samples, err := ScoreDistribution(4, spec, TrialConfig{Trials: 320}, 2024)
	if err != nil {
		t.Fatal(err)
	}
	results, err := mlfit.FitAll(samples, mlfit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	best := results[0].Func
	// The learned function must (weakly) prefer earlier arrivals and
	// smaller/shorter tasks over the training ranges.
	lo := best.Eval(10, 2, 3600)
	hiR := best.Eval(30000, 2, 3600)
	hiS := best.Eval(10, 2, 86400)
	if lo > hiR+1e-12 && lo > hiS+1e-12 {
		t.Errorf("best function %s prefers big/late tasks (lo=%v hiR=%v hiS=%v)",
			best.Compact(), lo, hiR, hiS)
	}
}
