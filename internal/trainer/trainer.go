// Package trainer implements the paper's simulation scheme (§3.2): it
// builds tuples of task sets (S, Q) from the Lublin–Feitelson model,
// simulates many random permutations of Q being served after S ("trials"),
// scores every task of Q by Eq. 3 — the normalized sum of average bounded
// slowdowns over the trials where that task ran first — and aggregates the
// (r, n, s, score) samples that the regression of §3.3 consumes.
//
// Trials are balanced: each task of Q is placed first in exactly
// trials/|Q| permutations, making Σ_t score(t) = 1 an exact invariant.
// All stochastic choices derive from explicit seeds, so distributions are
// reproducible for any worker count.
package trainer

import (
	"context"
	"errors"
	"fmt"

	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/mlfit"
	"github.com/hpcsched/gensched/internal/runner"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/workload"
)

// TupleSpec describes how to draw one (S, Q) tuple. The paper uses
// |S| = 16, |Q| = 32 on a 256-core machine.
type TupleSpec struct {
	SSize, QSize int
	Cores        int
	Params       lublin.Params // workload model for the job stream
}

// DefaultSpec returns the paper's training configuration.
func DefaultSpec() TupleSpec {
	return TupleSpec{SSize: 16, QSize: 32, Cores: 256, Params: lublin.DefaultParams(256)}
}

// Tuple is one (S, Q) pair: S establishes a realistic initial resource
// state; Q is the measured task set.
type Tuple struct {
	S, Q  []workload.Job
	Cores int
}

// GenerateTuple draws the tuple from a fresh Lublin stream: the first
// |S| jobs become S (released at t = 0, served in arrival order), the next
// |Q| jobs keep their model arrival times and become Q.
func GenerateTuple(spec TupleSpec, seed uint64) (Tuple, error) {
	if spec.SSize < 0 || spec.QSize <= 0 {
		return Tuple{}, fmt.Errorf("trainer: need positive |Q| and non-negative |S| (got %d, %d)", spec.SSize, spec.QSize)
	}
	gen, err := lublin.NewGenerator(spec.Params, spec.Cores, seed)
	if err != nil {
		return Tuple{}, err
	}
	jobs := gen.Jobs(spec.SSize + spec.QSize)
	t := Tuple{Cores: spec.Cores}
	for i, j := range jobs {
		if i < spec.SSize {
			j.Submit = 0
			t.S = append(t.S, j)
		} else {
			t.Q = append(t.Q, j)
		}
	}
	return t, nil
}

// TrialConfig controls the permutation trials of one tuple.
type TrialConfig struct {
	// Trials is the total number of permutations to simulate; it is
	// rounded up to a multiple of |Q| so every task leads the same number
	// of permutations. The paper settles on 256k (Fig. 2).
	Trials int
	// Tau is the bounded-slowdown constant (0 = paper's 10s).
	Tau float64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed drives permutation generation.
	Seed uint64
}

// Errors from the trial engine.
var (
	ErrNoTrials = errors.New("trainer: trial count must be positive")
	ErrEmptyQ   = errors.New("trainer: tuple has no Q tasks")
)

// TupleScores is the trial score distribution of one tuple: Scores[i] is
// Eq. 3 for task Q[i]; Samples are the same values keyed by the task's
// (r, n, s) for the regression set Tr.
type TupleScores struct {
	Tuple   Tuple
	Scores  []float64
	Samples []mlfit.Sample
}

// ScoreTuple runs balanced permutation trials of the tuple and returns the
// per-task trial score distribution.
func ScoreTuple(t Tuple, cfg TrialConfig) (*TupleScores, error) {
	if cfg.Trials <= 0 {
		return nil, ErrNoTrials
	}
	q := len(t.Q)
	if q == 0 {
		return nil, ErrEmptyQ
	}
	perTask := (cfg.Trials + q - 1) / q
	total := perTask * q

	// aveBsld[k] is AVEbsld of trial k; trial k puts task Q[k%q] first.
	// Accumulating per-trial then reducing sequentially keeps the result
	// bit-identical for every worker count. The fan-out goes through the
	// shared runner pool; the trial runner itself is read-only state, so
	// one instance serves every worker.
	aveBsld := make([]float64, total)
	tr := newTrialRunner(t, cfg.Tau)
	err := runner.Run(context.Background(), cfg.Workers, total, func(_ context.Context, k int) error {
		v, err := tr.run(k, q, cfg.Seed)
		if err != nil {
			return err
		}
		aveBsld[k] = v
		return nil
	})
	if err != nil {
		return nil, err
	}

	sums := make([]float64, q)
	var grand float64
	for k, v := range aveBsld {
		sums[k%q] += v
		grand += v
	}
	out := &TupleScores{Tuple: t, Scores: make([]float64, q), Samples: make([]mlfit.Sample, q)}
	for i := range sums {
		score := 0.0
		if grand > 0 {
			score = sums[i] / grand
		}
		out.Scores[i] = score
		out.Samples[i] = mlfit.Sample{
			R:     t.Q[i].Runtime,
			N:     float64(t.Q[i].Cores),
			S:     t.Q[i].Submit,
			Score: score,
		}
	}
	return out, nil
}

// trialRunner holds the shared read-only state for simulating trials; a
// single instance is safe for concurrent run calls.
type trialRunner struct {
	tuple Tuple
	tau   float64
	jobs  []workload.Job // S followed by Q, stable job IDs
	qIDs  map[int]bool
}

func newTrialRunner(t Tuple, tau float64) *trialRunner {
	tr := &trialRunner{tuple: t, tau: tau, qIDs: make(map[int]bool, len(t.Q))}
	tr.jobs = append(tr.jobs, t.S...)
	tr.jobs = append(tr.jobs, t.Q...)
	for _, j := range t.Q {
		tr.qIDs[j.ID] = true
	}
	return tr
}

// run simulates trial k: task Q[k%q] first, the rest shuffled from the
// trial's own sub-seed, S served ahead of all Q in arrival order.
func (tr *trialRunner) run(k, q int, seed uint64) (float64, error) {
	rng := newTrialRNG(seed, uint64(k))
	first := k % q
	// perm = [first] ++ shuffle(others).
	perm := make([]int, q)
	perm[0] = first
	idx := 1
	for i := 0; i < q; i++ {
		if i != first {
			perm[idx] = i
			idx++
		}
	}
	rest := perm[1:]
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })

	rank := make(map[int]int, len(tr.jobs))
	for i, j := range tr.tuple.S {
		rank[j.ID] = i // S keeps arrival order ahead of every Q task
	}
	base := len(tr.tuple.S)
	for pos, qi := range perm {
		rank[tr.tuple.Q[qi].ID] = base + pos
	}
	res, err := sim.Run(sim.Platform{Cores: tr.tuple.Cores}, tr.jobs, sim.Options{
		Policy: sched.FixedOrder(rank),
		Tau:    tr.tau,
	})
	if err != nil {
		return 0, err
	}
	return sim.AveBsld(res.Stats, func(s sim.JobStats) bool { return tr.qIDs[s.Job.ID] }), nil
}
