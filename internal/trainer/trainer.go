// Package trainer implements the paper's simulation scheme (§3.2): it
// builds tuples of task sets (S, Q) from the Lublin–Feitelson model,
// simulates many random permutations of Q being served after S ("trials"),
// scores every task of Q by Eq. 3 — the normalized sum of average bounded
// slowdowns over the trials where that task ran first — and aggregates the
// (r, n, s, score) samples that the regression of §3.3 consumes.
//
// Trials are balanced: each task of Q is placed first in exactly
// trials/|Q| permutations, making Σ_t score(t) = 1 an exact invariant.
// All stochastic choices derive from explicit seeds, so distributions are
// reproducible for any worker count.
package trainer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/mlfit"
	"github.com/hpcsched/gensched/internal/runner"
	"github.com/hpcsched/gensched/internal/sched"
	"github.com/hpcsched/gensched/internal/schedcore"
	"github.com/hpcsched/gensched/internal/sim"
	"github.com/hpcsched/gensched/internal/workload"
)

// TupleSpec describes how to draw one (S, Q) tuple. The paper uses
// |S| = 16, |Q| = 32 on a 256-core machine.
type TupleSpec struct {
	SSize, QSize int
	Cores        int
	Params       lublin.Params // workload model for the job stream
}

// DefaultSpec returns the paper's training configuration.
func DefaultSpec() TupleSpec {
	return TupleSpec{SSize: 16, QSize: 32, Cores: 256, Params: lublin.DefaultParams(256)}
}

// Tuple is one (S, Q) pair: S establishes a realistic initial resource
// state; Q is the measured task set.
type Tuple struct {
	S, Q  []workload.Job
	Cores int
}

// GenerateTuple draws the tuple from a fresh Lublin stream: the first
// |S| jobs become S (released at t = 0, served in arrival order), the next
// |Q| jobs keep their model arrival times and become Q.
func GenerateTuple(spec TupleSpec, seed uint64) (Tuple, error) {
	if spec.SSize < 0 || spec.QSize <= 0 {
		return Tuple{}, fmt.Errorf("trainer: need positive |Q| and non-negative |S| (got %d, %d)", spec.SSize, spec.QSize)
	}
	gen, err := lublin.NewGenerator(spec.Params, spec.Cores, seed)
	if err != nil {
		return Tuple{}, err
	}
	jobs := gen.Jobs(spec.SSize + spec.QSize)
	t := Tuple{Cores: spec.Cores}
	for i, j := range jobs {
		if i < spec.SSize {
			j.Submit = 0
			t.S = append(t.S, j)
		} else {
			t.Q = append(t.Q, j)
		}
	}
	return t, nil
}

// TrialConfig controls the permutation trials of one tuple.
type TrialConfig struct {
	// Trials is the total number of permutations to simulate; it is
	// rounded up to a multiple of |Q| so every task leads the same number
	// of permutations. The paper settles on 256k (Fig. 2).
	Trials int
	// Tau is the bounded-slowdown constant (0 = paper's 10s).
	Tau float64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed drives permutation generation.
	Seed uint64
}

// Errors from the trial engine.
var (
	ErrNoTrials = errors.New("trainer: trial count must be positive")
	ErrEmptyQ   = errors.New("trainer: tuple has no Q tasks")
)

// TupleScores is the trial score distribution of one tuple: Scores[i] is
// Eq. 3 for task Q[i]; Samples are the same values keyed by the task's
// (r, n, s) for the regression set Tr.
type TupleScores struct {
	Tuple   Tuple
	Scores  []float64
	Samples []mlfit.Sample
}

// ScoreTuple runs balanced permutation trials of the tuple and returns the
// per-task trial score distribution.
func ScoreTuple(t Tuple, cfg TrialConfig) (*TupleScores, error) {
	if cfg.Trials <= 0 {
		return nil, ErrNoTrials
	}
	q := len(t.Q)
	if q == 0 {
		return nil, ErrEmptyQ
	}
	perTask := (cfg.Trials + q - 1) / q
	total := perTask * q

	// aveBsld[k] is AVEbsld of trial k; trial k puts task Q[k%q] first.
	// Accumulating per-trial then reducing sequentially keeps the result
	// bit-identical for every worker count. The fan-out goes through the
	// shared runner pool; the trial runner itself is read-only state, so
	// one instance serves every worker, and each trial borrows a pooled
	// engine + buffer set instead of allocating its own.
	aveBsld := make([]float64, total)
	tr, err := newTrialRunner(t, cfg.Tau)
	if err != nil {
		return nil, err
	}
	err = runner.Run(context.Background(), cfg.Workers, total, func(_ context.Context, k int) error {
		st := trialPool.Get().(*trialState)
		aveBsld[k] = tr.run(st, k, q, cfg.Seed)
		trialPool.Put(st)
		return nil
	})
	if err != nil {
		return nil, err
	}

	sums := make([]float64, q)
	var grand float64
	for k, v := range aveBsld {
		sums[k%q] += v
		grand += v
	}
	out := &TupleScores{Tuple: t, Scores: make([]float64, q), Samples: make([]mlfit.Sample, q)}
	for i := range sums {
		score := 0.0
		if grand > 0 {
			score = sums[i] / grand
		}
		out.Scores[i] = score
		out.Samples[i] = mlfit.Sample{
			R:     t.Q[i].Runtime,
			N:     float64(t.Q[i].Cores),
			S:     t.Q[i].Submit,
			Score: score,
		}
	}
	return out, nil
}

// trialRunner holds the shared read-only state for simulating trials; a
// single instance is safe for concurrent run calls. Jobs are validated
// once at construction — the per-trial fast path assumes a well-formed
// tuple.
type trialRunner struct {
	tuple  Tuple
	tau    float64
	jobs   []workload.Job // S followed by Q, stable job IDs
	qStart int            // index of the first Q job in jobs
	maxID  int            // largest job ID, for the dense rank table
	dense  bool           // job IDs index a slice rank table (all in [0, denseIDLimit))
}

// denseIDLimit bounds the dense rank table: tuples drawn by GenerateTuple
// or SampleTuple carry small sequential IDs, but ScoreTuple accepts any
// Tuple, and a caller feeding archive jobs with million-scale IDs must not
// make every pooled trial state carry a million-entry table.
const denseIDLimit = 1 << 16

func newTrialRunner(t Tuple, tau float64) (*trialRunner, error) {
	if t.Cores <= 0 {
		// The per-trial sim.Run used to reject this; without the guard a
		// zero-core engine "schedules" nothing and every task keeps
		// Start=0, yielding uniform garbage scores instead of an error.
		return nil, sim.ErrNoCores
	}
	tr := &trialRunner{tuple: t, tau: tau, qStart: len(t.S), dense: true}
	tr.jobs = append(tr.jobs, t.S...)
	tr.jobs = append(tr.jobs, t.Q...)
	seen := make(map[int]bool, len(tr.jobs))
	for i := range tr.jobs {
		if err := tr.jobs[i].Validate(t.Cores); err != nil {
			return nil, fmt.Errorf("trainer: %w", err)
		}
		id := tr.jobs[i].ID
		// Ranks (and the trial scores) are keyed by job ID; a duplicate
		// would make one rank silently win over another.
		if seen[id] {
			return nil, fmt.Errorf("trainer: duplicate job id %d in tuple", id)
		}
		seen[id] = true
		// Every ID must be a valid slice index for the dense table;
		// negative or huge IDs fall back to the map.
		if id < 0 || id >= denseIDLimit {
			tr.dense = false
		} else if id > tr.maxID {
			tr.maxID = id
		}
	}
	return tr, nil
}

// trialState is one trial's working set — the scheduling engine and the
// permutation/rank buffers — recycled through a pool so a full ScoreTuple
// (and the retraining rounds stacking many of them) stays allocation-flat
// after the first few trials warm the pool.
type trialState struct {
	eng     *schedcore.Engine
	rng     dist.RNG
	perm    []int
	rank    []int       // job ID → permutation rank; -1 = unranked
	rankMap map[int]int // fallback for sparse job IDs
}

var trialPool = sync.Pool{New: func() any { return &trialState{} }}

// Name, Score, TimeVarying and ScoreID make trialState itself the
// fixed-order policy of its current trial, reading the rank buffers in
// place. The scores reproduce sched.FixedOrder exactly: the rank for
// known IDs, a beyond-any-rank value ordered by submit time for unknown
// ones (unreachable for tuple jobs, which are all ranked).
func (st *trialState) Name() string                  { return "FIXED" }
func (st *trialState) TimeVarying() bool             { return false }
func (st *trialState) Score(v sched.JobView) float64 { return v.Submit }

func (st *trialState) ScoreID(id int, v sched.JobView) float64 {
	if st.rankMap != nil {
		if r, ok := st.rankMap[id]; ok {
			return float64(r)
		}
	} else if id >= 0 && id < len(st.rank) {
		if r := st.rank[id]; r >= 0 {
			return float64(r)
		}
	}
	return math.MaxInt32 + v.Submit
}

var _ sched.PolicyWithID = (*trialState)(nil)

// setRank records one job's permutation rank.
func (st *trialState) setRank(id, r int) {
	if st.rankMap != nil {
		st.rankMap[id] = r
	} else {
		st.rank[id] = r
	}
}

// prepare sizes the state's buffers for a trial of the runner's tuple.
// Only the tuple's own job IDs are reset in the dense table — O(jobs),
// not O(maxID) — which is sound because run() then writes every one of
// those IDs (they are unique, checked at construction) and the engine
// never asks ScoreID about any other ID; entries left over from other
// tuples are simply never read.
func (st *trialState) prepare(tr *trialRunner, q int) {
	if cap(st.perm) < q {
		st.perm = make([]int, q)
	}
	st.perm = st.perm[:q]
	if tr.dense {
		st.rankMap = nil
		if cap(st.rank) < tr.maxID+1 {
			st.rank = make([]int, tr.maxID+1)
		}
		st.rank = st.rank[:tr.maxID+1]
		for i := range tr.jobs {
			st.rank[tr.jobs[i].ID] = -1
		}
	} else {
		if st.rankMap == nil {
			st.rankMap = make(map[int]int, len(tr.jobs))
		} else {
			clear(st.rankMap)
		}
	}
}

// run simulates trial k: task Q[k%q] first, the rest shuffled from the
// trial's own sub-seed, S served ahead of all Q in arrival order. The
// schedule and the returned AVEbsld are bit-identical to running the
// trial through sim.Run with a sched.FixedOrder policy — the pooled
// engine re-establishes every decision input from scratch, and the
// bounded-slowdown sum visits the Q tasks in the same input order
// sim.AveBsld walked the job statistics. (Job IDs are unique, enforced
// by newTrialRunner, so "the Q tasks" is the same set under either the
// old ID-keyed filter or the index range used here.)
func (tr *trialRunner) run(st *trialState, k, q int, seed uint64) float64 {
	// Reseeding the pooled generator reproduces newTrialRNG's stream
	// without the per-trial allocation.
	rng := &st.rng
	rng.Reseed(dist.Split(seed, uint64(k)))
	first := k % q
	st.prepare(tr, q)
	// perm = [first] ++ shuffle(others).
	perm := st.perm
	perm[0] = first
	idx := 1
	for i := 0; i < q; i++ {
		if i != first {
			perm[idx] = i
			idx++
		}
	}
	rest := perm[1:]
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })

	for i, j := range tr.tuple.S {
		st.setRank(j.ID, i) // S keeps arrival order ahead of every Q task
	}
	for pos, qi := range perm {
		st.setRank(tr.tuple.Q[qi].ID, tr.qStart+pos)
	}

	cfg := schedcore.Config{Policy: st}
	if st.eng == nil {
		st.eng = schedcore.NewEngine(tr.tuple.Cores, cfg)
	} else {
		st.eng.Reset(tr.tuple.Cores, cfg)
	}
	eng := st.eng
	for i := range tr.jobs {
		eng.PushArrival(eng.AddTask(tr.jobs[i]))
	}
	eng.RunBatch()

	// Eq. 2 over the Q tasks (task index i is input index i, so the Q
	// tasks are exactly indices qStart..len(jobs)-1, in input order).
	var sum float64
	for i := tr.qStart; i < len(tr.jobs); i++ {
		t := eng.Task(i)
		sum += sim.Bsld(t.Start-t.Job.Submit, t.Job.Runtime, tr.tau)
	}
	return sum / float64(q)
}
