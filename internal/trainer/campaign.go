package trainer

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/mlfit"
	"github.com/hpcsched/gensched/internal/workload"
)

// Campaign reproduces the artifact's training-data-generator process
// layout: a long-running generation campaign that writes one file per
// tuple under two directories —
//
//	<dir>/task-sets/tuple-NNNN.csv      the (S,Q) tasks (runtime,#processors,submit)
//	<dir>/training-data/tuple-NNNN.csv  the scored Q tasks (runtime,#processors,submit,score)
//
// so a campaign can be stopped, resumed and extended at any time, and
// Gather (the gather_data.py equivalent) joins everything into the final
// score distribution.
type Campaign struct {
	Dir    string
	Spec   TupleSpec
	Trials TrialConfig
	Seed   uint64
}

const (
	taskSetsDir     = "task-sets"
	trainingDataDir = "training-data"
)

// Run scores tuples [from, from+count) and writes their files. Tuple i is
// fully determined by (Seed, i), so re-running an index reproduces its
// file bit for bit, and disjoint index ranges can run on different
// machines.
func (c Campaign) Run(from, count int) error {
	if count <= 0 {
		return fmt.Errorf("trainer: campaign count must be positive, got %d", count)
	}
	if err := os.MkdirAll(filepath.Join(c.Dir, taskSetsDir), 0o755); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join(c.Dir, trainingDataDir), 0o755); err != nil {
		return err
	}
	for i := from; i < from+count; i++ {
		sub := dist.Split(c.Seed, uint64(i))
		tuple, err := GenerateTuple(c.Spec, sub)
		if err != nil {
			return err
		}
		cfg := c.Trials
		cfg.Seed = dist.Split(sub, 1)
		scores, err := ScoreTuple(tuple, cfg)
		if err != nil {
			return err
		}
		if err := writeTaskSet(c.tupleFile(taskSetsDir, i), tuple); err != nil {
			return err
		}
		if err := writeScoredSet(c.tupleFile(trainingDataDir, i), scores); err != nil {
			return err
		}
	}
	return nil
}

func (c Campaign) tupleFile(sub string, i int) string {
	return filepath.Join(c.Dir, sub, fmt.Sprintf("tuple-%04d.csv", i))
}

// writeTaskSet stores every task of the tuple (S then Q) in the
// artifact's task-set format: runtime,#processors,submit.
func writeTaskSet(path string, t Tuple) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, j := range append(append([]workload.Job(nil), t.S...), t.Q...) {
		fmt.Fprintf(w, "%g,%d,%g\n", j.Runtime, j.Cores, j.Submit)
	}
	return w.Flush()
}

// writeScoredSet stores the trial score distribution of the tuple in the
// artifact's training-data format: runtime,#processors,submit,score.
func writeScoredSet(path string, ts *TupleScores) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteScoreCSV(f, ts.Samples)
}

// Gather joins every training-data file of a campaign directory into one
// sample set — the artifact's gather_data.py producing
// score-distribution.csv. Files are read in name order so the result is
// deterministic.
func Gather(dir string) ([]mlfit.Sample, error) {
	root := filepath.Join(dir, trainingDataDir)
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("trainer: gather: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("trainer: gather: no training-data files in %s", root)
	}
	var out []mlfit.Sample
	for _, name := range names {
		f, err := os.Open(filepath.Join(root, name))
		if err != nil {
			return nil, err
		}
		samples, err := ReadScoreCSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("trainer: gather %s: %w", name, err)
		}
		out = append(out, samples...)
	}
	return out, nil
}
