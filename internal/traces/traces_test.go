package traces

import (
	"math"
	"testing"
)

func TestSpecsValid(t *testing.T) {
	for _, spec := range All() {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
	if len(All()) != 4 {
		t.Errorf("expected the four Table 5 platforms")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []PlatformSpec{
		{Name: "x", Cores: 0, TargetUtil: 0.5, AllocUnit: 1},
		{Name: "x", Cores: 10, TargetUtil: 0, AllocUnit: 1},
		{Name: "x", Cores: 10, TargetUtil: 1.5, AllocUnit: 1},
		{Name: "x", Cores: 10, TargetUtil: 0.5, AllocUnit: 0},
		{Name: "x", Cores: 10, TargetUtil: 0.5, AllocUnit: 11},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGenerateCTCSP2(t *testing.T) {
	tr, err := Generate(CTCSP2, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	if math.Abs(st.Utilization-CTCSP2.TargetUtil) > 0.02 {
		t.Errorf("utilization = %.3f, want %.3f", st.Utilization, CTCSP2.TargetUtil)
	}
	if st.DurationSec < 9*24*3600 {
		t.Errorf("trace spans %.1f days, want >= 9", st.DurationSec/86400)
	}
	for _, j := range tr.Jobs {
		if j.Cores > CTCSP2.Cores {
			t.Fatalf("job uses %d cores on a %d-core machine", j.Cores, CTCSP2.Cores)
		}
		if j.Estimate < j.Runtime {
			t.Fatal("estimate below runtime")
		}
	}
}

func TestGenerateIntrepidGranularity(t *testing.T) {
	tr, err := Generate(Intrepid, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if j.Cores%Intrepid.AllocUnit != 0 {
			t.Fatalf("allocation %d not a multiple of %d", j.Cores, Intrepid.AllocUnit)
		}
	}
	st := tr.ComputeStats()
	if math.Abs(st.Utilization-Intrepid.TargetUtil) > 0.02 {
		t.Errorf("utilization = %.3f, want %.3f", st.Utilization, Intrepid.TargetUtil)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(SDSCBlue, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SDSCBlue, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(PlatformSpec{Name: "bad"}, 1, 1); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := Generate(CTCSP2, 0, 1); err == nil {
		t.Error("zero days accepted")
	}
}

func TestPlatformsDifferInScale(t *testing.T) {
	// The point of the trace study: platforms must look very different.
	curie, err := Generate(Curie, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctc, err := Generate(CTCSP2, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	cs, ts := curie.ComputeStats(), ctc.ComputeStats()
	if cs.MeanCores <= ts.MeanCores*2 {
		t.Errorf("Curie mean cores %.1f not far above CTC %.1f", cs.MeanCores, ts.MeanCores)
	}
}
