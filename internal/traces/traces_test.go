package traces

import (
	"math"
	"testing"

	"github.com/hpcsched/gensched/internal/workload"
)

func TestSpecsValid(t *testing.T) {
	for _, spec := range All() {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
	if len(All()) != 4 {
		t.Errorf("expected the four Table 5 platforms")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []PlatformSpec{
		{Name: "x", Cores: 0, TargetUtil: 0.5, AllocUnit: 1},
		{Name: "x", Cores: 10, TargetUtil: 0, AllocUnit: 1},
		{Name: "x", Cores: 10, TargetUtil: 1.5, AllocUnit: 1},
		{Name: "x", Cores: 10, TargetUtil: 0.5, AllocUnit: 0},
		{Name: "x", Cores: 10, TargetUtil: 0.5, AllocUnit: 11},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGenerateCTCSP2(t *testing.T) {
	tr, err := Generate(CTCSP2, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	if math.Abs(st.Utilization-CTCSP2.TargetUtil) > 0.02 {
		t.Errorf("utilization = %.3f, want %.3f", st.Utilization, CTCSP2.TargetUtil)
	}
	if st.DurationSec < 9*24*3600 {
		t.Errorf("trace spans %.1f days, want >= 9", st.DurationSec/86400)
	}
	for _, j := range tr.Jobs {
		if j.Cores > CTCSP2.Cores {
			t.Fatalf("job uses %d cores on a %d-core machine", j.Cores, CTCSP2.Cores)
		}
		if j.Estimate < j.Runtime {
			t.Fatal("estimate below runtime")
		}
	}
}

func TestGenerateIntrepidGranularity(t *testing.T) {
	tr, err := Generate(Intrepid, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if j.Cores%Intrepid.AllocUnit != 0 {
			t.Fatalf("allocation %d not a multiple of %d", j.Cores, Intrepid.AllocUnit)
		}
	}
	st := tr.ComputeStats()
	if math.Abs(st.Utilization-Intrepid.TargetUtil) > 0.02 {
		t.Errorf("utilization = %.3f, want %.3f", st.Utilization, Intrepid.TargetUtil)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(SDSCBlue, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SDSCBlue, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(PlatformSpec{Name: "bad"}, 1, 1); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := Generate(CTCSP2, 0, 1); err == nil {
		t.Error("zero days accepted")
	}
}

// TestAllPlatformsCalibrationAndCaps sweeps the four Table 5 platforms
// and checks the three properties every synthetic stand-in must satisfy:
// allocation granularity (Intrepid's 512-core blocks, SDSC's 8-way
// nodes), utilization calibrated to the log's published mean within the
// tolerance the experiments assume, and runtimes inside the model's
// clamp on every platform.
func TestAllPlatformsCalibrationAndCaps(t *testing.T) {
	const utilTol = 0.02
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tr, err := Generate(spec, 2, 1234)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			maxRuntime := 2.7e4 // the Lublin default the specs inherit
			if spec.MaxRuntime > 0 {
				maxRuntime = spec.MaxRuntime
			}
			for _, j := range tr.Jobs {
				if j.Cores%spec.AllocUnit != 0 {
					t.Fatalf("job %d: allocation %d not a multiple of the %d-core unit",
						j.ID, j.Cores, spec.AllocUnit)
				}
				if j.Cores > spec.Cores {
					t.Fatalf("job %d: %d cores on a %d-core machine", j.ID, j.Cores, spec.Cores)
				}
				if j.Runtime < 1 || j.Runtime > maxRuntime {
					t.Fatalf("job %d: runtime %g outside [1, %g]", j.ID, j.Runtime, maxRuntime)
				}
				if j.Estimate < j.Runtime {
					t.Fatalf("job %d: estimate %g below runtime %g", j.ID, j.Estimate, j.Runtime)
				}
			}
			st := tr.ComputeStats()
			if math.Abs(st.Utilization-spec.TargetUtil) > utilTol {
				t.Fatalf("utilization %.3f misses the Table 5 target %.3f by more than %.2f",
					st.Utilization, spec.TargetUtil, utilTol)
			}
		})
	}
}

// TestMaxRuntimeCapOverride pins that a spec's wallclock cap reaches the
// generator: every runtime respects it, and the trace still calibrates.
func TestMaxRuntimeCapOverride(t *testing.T) {
	spec := CTCSP2
	spec.Name = "CTC capped"
	spec.MaxRuntime = 1800
	tr, err := Generate(spec, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	capped := 0
	for _, j := range tr.Jobs {
		if j.Runtime > spec.MaxRuntime {
			t.Fatalf("job %d: runtime %g above the %g cap", j.ID, j.Runtime, spec.MaxRuntime)
		}
		if j.Runtime == spec.MaxRuntime {
			capped++
		}
	}
	if capped == 0 {
		t.Error("no job hit the cap; the override was not exercised")
	}
	st := tr.ComputeStats()
	if math.Abs(st.Utilization-spec.TargetUtil) > 0.02 {
		t.Errorf("capped trace utilization %.3f misses target %.3f", st.Utilization, spec.TargetUtil)
	}
}

// TestQuantizeAllocations pins the rounding rule in isolation: requests
// round UP to the unit (a 1-core job on Intrepid takes a whole 512-block,
// the BlueGene reality the experiments model) and clamp at machine size.
func TestQuantizeAllocations(t *testing.T) {
	spec := PlatformSpec{Name: "q", Cores: 1024, TargetUtil: 0.5, AllocUnit: 512}
	jobs := []workload.Job{
		{ID: 1, Cores: 1, Runtime: 10},
		{ID: 2, Cores: 512, Runtime: 10},
		{ID: 3, Cores: 513, Runtime: 10},
		{ID: 4, Cores: 1024, Runtime: 10},
	}
	quantizeAllocations(jobs, spec)
	for i, want := range []int{512, 512, 1024, 1024} {
		if jobs[i].Cores != want {
			t.Errorf("job %d: quantized to %d, want %d", jobs[i].ID, jobs[i].Cores, want)
		}
	}
	// A would-be overflow (rounding past the machine) clamps to the top.
	over := []workload.Job{{ID: 5, Cores: 1025, Runtime: 10}}
	quantizeAllocations(over, PlatformSpec{Name: "q2", Cores: 1200, TargetUtil: 0.5, AllocUnit: 512})
	if over[0].Cores != 1200 {
		t.Errorf("overflowing request quantized to %d, want the 1200-core clamp", over[0].Cores)
	}
	// Unit 1 is the identity.
	one := []workload.Job{{ID: 6, Cores: 7, Runtime: 10}}
	quantizeAllocations(one, CTCSP2)
	if one[0].Cores != 7 {
		t.Errorf("unit-1 platform changed a request to %d", one[0].Cores)
	}
}

func TestPlatformsDifferInScale(t *testing.T) {
	// The point of the trace study: platforms must look very different.
	curie, err := Generate(Curie, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctc, err := Generate(CTCSP2, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	cs, ts := curie.ComputeStats(), ctc.ComputeStats()
	if cs.MeanCores <= ts.MeanCores*2 {
		t.Errorf("Curie mean cores %.1f not far above CTC %.1f", cs.MeanCores, ts.MeanCores)
	}
}
