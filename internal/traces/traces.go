// Package traces builds the synthetic stand-ins for the four Parallel
// Workloads Archive logs the paper evaluates on (Table 5): CEA Curie, ANL
// Intrepid, SDSC Blue Horizon and CTC SP2. The real logs are external data
// this offline reproduction cannot download, so each platform is modeled
// by the Lublin–Feitelson generator re-parameterized for the machine's
// scale and allocation granularity, then calibrated to the log's published
// mean utilization, with user estimates from the Tsafrir model. See
// DESIGN.md ("Substitutions") for why this preserves the property the
// experiment tests: workloads that differ strongly from the 256-core
// training configuration.
package traces

import (
	"fmt"
	"math"

	"github.com/hpcsched/gensched/internal/dist"
	"github.com/hpcsched/gensched/internal/lublin"
	"github.com/hpcsched/gensched/internal/tsafrir"
	"github.com/hpcsched/gensched/internal/workload"
)

// PlatformSpec describes one synthetic platform.
type PlatformSpec struct {
	Name       string
	Year       int
	Cores      int
	TargetUtil float64 // Table 5 mean utilization (0..1)
	AllocUnit  int     // minimum allocation granularity (BlueGene-style); 1 = none
	MaxRuntime float64 // wallclock cap, seconds (0 = Lublin default)
}

// The four platforms of Table 5.
var (
	// Curie is a large general-purpose cluster: many small jobs on 93k cores.
	Curie = PlatformSpec{Name: "Curie", Year: 2011, Cores: 93312, TargetUtil: 0.620, AllocUnit: 1}
	// Intrepid is a BlueGene/P: partitions are allocated in 512-core blocks.
	Intrepid = PlatformSpec{Name: "ANL Intrepid", Year: 2009, Cores: 163840, TargetUtil: 0.596, AllocUnit: 512}
	// SDSCBlue is an IBM SP (Blue Horizon): 8-way nodes.
	SDSCBlue = PlatformSpec{Name: "SDSC Blue", Year: 2003, Cores: 1152, TargetUtil: 0.767, AllocUnit: 8}
	// CTCSP2 is a small, highly loaded SP2.
	CTCSP2 = PlatformSpec{Name: "CTC SP2", Year: 1997, Cores: 338, TargetUtil: 0.852, AllocUnit: 1}
)

// All lists the Table 5 platforms in the paper's order.
func All() []PlatformSpec { return []PlatformSpec{Curie, Intrepid, SDSCBlue, CTCSP2} }

// Validate reports the first problem with the spec, if any.
func (p PlatformSpec) Validate() error {
	switch {
	case p.Cores <= 0:
		return fmt.Errorf("traces: %s: non-positive cores", p.Name)
	case p.TargetUtil <= 0 || p.TargetUtil > 1:
		return fmt.Errorf("traces: %s: utilization %v outside (0,1]", p.Name, p.TargetUtil)
	case p.AllocUnit < 1 || p.AllocUnit > p.Cores:
		return fmt.Errorf("traces: %s: bad allocation unit %d", p.Name, p.AllocUnit)
	}
	return nil
}

// Generate produces a synthetic SWF-compatible trace spanning the given
// number of days, calibrated to the platform's target utilization, with
// Tsafrir user estimates attached.
func Generate(spec PlatformSpec, days float64, seed uint64) (*workload.Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if days <= 0 {
		return nil, fmt.Errorf("traces: %s: non-positive duration", spec.Name)
	}
	params := lublin.DefaultParams(spec.Cores)
	if spec.MaxRuntime > 0 {
		params.MaxRuntime = spec.MaxRuntime
	}
	// Generate against the uncalibrated clock, then dilate arrivals to the
	// target load. The dilation factor depends on the stream's natural
	// load, which is heavy-tail dominated and cannot be probed reliably
	// from a short prefix, so iterate: generate, calibrate, measure the
	// calibrated span, and grow the generation span by the shortfall.
	wantSec := days * 24 * 3600
	span := wantSec
	var jobs []workload.Job
	for attempt := 0; ; attempt++ {
		if attempt >= 8 {
			return nil, fmt.Errorf("traces: %s: could not reach %v days after calibration", spec.Name, days)
		}
		gen, err := lublin.NewGenerator(params, spec.Cores, dist.Split(seed, 0))
		if err != nil {
			return nil, err
		}
		jobs = gen.Until(span)
		if len(jobs) < 100 {
			span *= 4
			continue
		}
		quantizeAllocations(jobs, spec)
		lublin.CalibrateLoad(jobs, spec.Cores, spec.TargetUtil)
		got := jobs[len(jobs)-1].Submit - jobs[0].Submit
		if got >= wantSec {
			break
		}
		grow := 1.6
		if got > 0 && wantSec/got > grow {
			grow = wantSec / got * 1.25
		}
		span *= grow
	}
	if err := tsafrir.Apply(tsafrir.Default(), jobs, dist.Split(seed, 1)); err != nil {
		return nil, err
	}
	t := &workload.Trace{Name: spec.Name, MaxProcs: spec.Cores, Jobs: jobs}
	t.SortBySubmit()
	return t, nil
}

// quantizeAllocations rounds every request up to the platform's allocation
// granularity, the way BlueGene-class machines hand out partitions.
func quantizeAllocations(jobs []workload.Job, spec PlatformSpec) {
	if spec.AllocUnit <= 1 {
		return
	}
	for i := range jobs {
		u := int(math.Ceil(float64(jobs[i].Cores)/float64(spec.AllocUnit))) * spec.AllocUnit
		if u > spec.Cores {
			u = spec.Cores
		}
		jobs[i].Cores = u
	}
}
