package dist

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverge at draw %d", i)
		}
	}
	c := New(43)
	same := true
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSplit(t *testing.T) {
	if Split(1, 2) != Split(1, 2) {
		t.Error("Split not deterministic")
	}
	// Streams of one seed, and one stream across seeds, must not collide.
	seen := make(map[uint64]bool)
	for stream := uint64(0); stream < 1000; stream++ {
		s := Split(7, stream)
		if seen[s] {
			t.Fatalf("stream %d collides", stream)
		}
		seen[s] = true
	}
	for seed := uint64(0); seed < 1000; seed++ {
		if seed == 7 {
			continue // already counted by the stream loop above
		}
		s := Split(seed, 3)
		if seen[s] {
			t.Fatalf("seed %d stream 3 collides", seed)
		}
		seen[s] = true
	}
}

func TestRNGSplitIndependentOfPosition(t *testing.T) {
	a := New(9)
	b := New(9)
	b.Float64() // advance b; Split must depend on the seed, not the state
	x, y := a.Split(5), b.Split(5)
	for i := 0; i < 100; i++ {
		if x.Uint64() != y.Uint64() {
			t.Fatal("Split depends on generator position")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want 0.5", mean)
	}
}

func TestOpen01Range(t *testing.T) {
	r := New(2)
	for i := 0; i < 200_000; i++ {
		v := r.Open01()
		if v <= 0 || v > 1 {
			t.Fatalf("Open01 = %v outside (0,1]", v)
		}
	}
}

func TestUintNUniform(t *testing.T) {
	r := New(3)
	const n, draws = 10, 100_000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.UintN(n)
		if v >= n {
			t.Fatalf("UintN(%d) = %d", n, v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("UintN bucket %d has %d draws, want about %.0f", v, c, want)
		}
	}
}

func TestIntNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestExpRandMoments(t *testing.T) {
	r := New(4)
	const n = 200_000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.ExpRand()
		if v < 0 {
			t.Fatalf("ExpRand = %v", v)
		}
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("ExpRand mean = %v, want 1", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("ExpRand variance = %v, want 1", variance)
	}
}

func TestNormRandMoments(t *testing.T) {
	r := New(5)
	const n = 200_000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormRand()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("NormRand mean = %v, want 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("NormRand variance = %v, want 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	p := r.Perm(100)
	if len(p) != 100 {
		t.Fatalf("Perm length %d", len(p))
	}
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation at %d", v)
		}
		seen[v] = true
	}
	q := New(6).Perm(100)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("Perm not deterministic")
		}
	}
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ shape, scale float64 }{
		{10.23, 0.4871}, // the Lublin arrival parameters
		{4.2, 0.94},     // the short-runtime component
		{0.5, 2.0},      // shape < 1 branch
	}
	for _, c := range cases {
		r := New(7)
		const n = 200_000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := Gamma(r, c.shape, c.scale)
			if v <= 0 {
				t.Fatalf("Gamma(%v,%v) = %v", c.shape, c.scale, v)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.02*wantMean {
			t.Errorf("Gamma(%v,%v) mean = %v, want %v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.05*wantVar {
			t.Errorf("Gamma(%v,%v) variance = %v, want %v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestHyperGammaMoments(t *testing.T) {
	h := HyperGamma{A1: 4.2, B1: 0.94, A2: 312, B2: 0.03, P: 0.7}
	r := New(8)
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += h.Sample(r)
	}
	mean := sum / n
	if want := h.Mean(); math.Abs(mean-want) > 0.02*want {
		t.Errorf("HyperGamma mean = %v, want %v", mean, want)
	}
}

func TestTwoStageUniform(t *testing.T) {
	ts := TwoStageUniform{Low: 0.8, Med: 4.5, High: 8, Prob: 0.86}
	if !ts.Valid() {
		t.Fatal("valid distribution rejected")
	}
	bad := []TwoStageUniform{
		{Low: 2, Med: 1, High: 3, Prob: 0.5},  // Low > Med
		{Low: 1, Med: 5, High: 4, Prob: 0.5},  // Med > High
		{Low: 1, Med: 2, High: 3, Prob: 1.5},  // Prob > 1
		{Low: 1, Med: 2, High: 3, Prob: -0.1}, // Prob < 0
	}
	for i, b := range bad {
		if b.Valid() {
			t.Errorf("bad distribution %d accepted", i)
		}
	}
	r := New(9)
	const n = 200_000
	var sum float64
	low := 0
	for i := 0; i < n; i++ {
		v := ts.Sample(r)
		if v < ts.Low || v > ts.High {
			t.Fatalf("sample %v outside [%v,%v]", v, ts.Low, ts.High)
		}
		if v <= ts.Med {
			low++
		}
		sum += v
	}
	if mean, want := sum/n, ts.Mean(); math.Abs(mean-want) > 0.02*want {
		t.Errorf("mean = %v, want %v", mean, want)
	}
	if frac := float64(low) / n; math.Abs(frac-ts.Prob) > 0.01 {
		t.Errorf("low-stage fraction = %v, want %v", frac, ts.Prob)
	}
}
