package dist

import "math"

// Gamma returns a draw from the gamma distribution with the given shape
// and scale (mean shape·scale). Marsaglia–Tsang squeeze for shape >= 1,
// with the standard power-of-uniform boost for shape < 1. The Lublin
// model draws ln(inter-arrival gap) from this distribution.
func Gamma(r *RNG, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("dist: Gamma needs positive shape and scale")
	}
	if shape < 1 {
		// X_a = X_{a+1} · U^{1/a}.
		return Gamma(r, shape+1, scale) * math.Pow(r.Open01(), 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormRand()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Open01()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// HyperGamma is a two-component gamma mixture: with probability P the
// draw comes from Gamma(A1, B1) (the Lublin model's short-job component),
// otherwise from Gamma(A2, B2) (the long-job component).
type HyperGamma struct {
	A1, B1 float64 // component 1: shape, scale
	A2, B2 float64 // component 2: shape, scale
	P      float64 // probability of component 1
}

// Mean returns the mixture mean P·A1·B1 + (1-P)·A2·B2.
func (h HyperGamma) Mean() float64 {
	return h.P*h.A1*h.B1 + (1-h.P)*h.A2*h.B2
}

// Sample draws one value from the mixture.
func (h HyperGamma) Sample(r *RNG) float64 {
	if r.Float64() < h.P {
		return Gamma(r, h.A1, h.B1)
	}
	return Gamma(r, h.A2, h.B2)
}

// TwoStageUniform is the Lublin size distribution: with probability Prob
// a uniform draw from [Low, Med], otherwise from [Med, High]. The model
// uses it for log2(job size), concentrating mass on small jobs.
type TwoStageUniform struct {
	Low, Med, High float64
	Prob           float64
}

// Valid reports whether the stages are ordered and the stage probability
// is a probability.
func (t TwoStageUniform) Valid() bool {
	return t.Low < t.Med && t.Med < t.High && t.Prob >= 0 && t.Prob <= 1
}

// Mean returns Prob·(Low+Med)/2 + (1-Prob)·(Med+High)/2.
func (t TwoStageUniform) Mean() float64 {
	return t.Prob*(t.Low+t.Med)/2 + (1-t.Prob)*(t.Med+t.High)/2
}

// Sample draws one value.
func (t TwoStageUniform) Sample(r *RNG) float64 {
	if r.Float64() < t.Prob {
		return t.Low + (t.Med-t.Low)*r.Float64()
	}
	return t.Med + (t.High-t.Med)*r.Float64()
}
