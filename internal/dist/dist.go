// Package dist is gensched's deterministic randomness kernel: a small,
// fast PRNG with explicit seeding and stream splitting, plus the three
// distributions the Lublin–Feitelson workload model is built from.
//
// Everything stochastic in the repository flows through this package so
// that (a) any simulation is reproducible bit for bit from a single seed,
// and (b) work fanned out over a worker pool can derive independent
// sub-streams with Split without coordinating — the property the trainer,
// the experiment grids and the public Runner all rely on.
package dist

import "math"

// golden is the splitmix64 increment (2^64 / phi), the standard odd
// constant that decorrelates consecutive seeds.
const golden = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split derives an independent sub-seed for the given stream index:
// splitmix64 applied to the (seed, stream) pair. Distinct streams of one
// seed, and equal streams of distinct seeds, yield unrelated generators,
// so grid cells and parallel trials can each take Split(seed, i) and stay
// reproducible for any worker count or execution order.
func Split(seed, stream uint64) uint64 {
	return mix64(seed + golden*(stream+1))
}

// RNG is a xoshiro256++ generator. It is deliberately not safe for
// concurrent use: parallel consumers take one RNG each via Split.
type RNG struct {
	s    [4]uint64
	seed uint64
}

// New returns a generator seeded via splitmix64 expansion of seed; equal
// seeds produce equal streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes the generator in place to exactly the state
// New(seed) builds. Pooled workers that derive a fresh stream per work
// item (the trainer's trial engine) reseed one generator instead of
// allocating one per item.
func (r *RNG) Reseed(seed uint64) {
	r.seed = seed
	z := seed
	for i := range r.s {
		z += golden
		r.s[i] = mix64(z)
	}
}

// Seed returns the seed the generator was created with (not its current
// state); Split uses it to derive child streams.
func (r *RNG) Seed() uint64 { return r.seed }

// Split returns a fresh generator for the given stream index, derived
// from the seed this generator was created with. Independent of how many
// values have been drawn from r.
func (r *RNG) Split(stream uint64) *RNG { return New(Split(r.seed, stream)) }

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next raw 64-bit value (xoshiro256++).
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform draw from [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Open01 returns a uniform draw from (0, 1] — safe to divide by or take
// the logarithm of.
func (r *RNG) Open01() float64 {
	return (float64(r.Uint64()>>11) + 1) / (1 << 53)
}

// UintN returns a uniform draw from [0, n). Panics if n is zero.
// Uses threshold rejection, so the result is exactly uniform.
func (r *RNG) UintN(n uint64) uint64 {
	if n == 0 {
		panic("dist: UintN with n = 0")
	}
	min := -n % n // 2^64 mod n
	for {
		v := r.Uint64()
		if v >= min {
			return v % n
		}
	}
}

// IntN returns a uniform draw from [0, n). Panics if n is not positive.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("dist: IntN with non-positive n")
	}
	return int(r.UintN(uint64(n)))
}

// ExpRand returns a draw from the exponential distribution with mean 1
// (rate 1); scale by the desired mean.
func (r *RNG) ExpRand() float64 {
	return -math.Log(r.Open01())
}

// NormRand returns a draw from the standard normal distribution
// (Box–Muller; two uniforms per draw, no cached state, so interleaving
// with other draws stays reproducible).
func (r *RNG) NormRand() float64 {
	u := r.Open01()
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements through swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.IntN(i+1))
	}
}
