// Package runner is the shared parallel execution engine: a bounded
// worker pool over an index space with context cancellation and
// deterministic assembly. Every fan-out in the repository — experiment
// grids, trial campaigns, the public Runner — delegates here instead of
// hand-rolling channels, so the concurrency semantics (first-error
// selection, cancellation, result placement) are identical everywhere.
//
// Determinism contract: the engine never makes results depend on worker
// count or scheduling order. Each index is executed at most once, results
// land in caller-owned slot i, and when several indices fail the error
// with the LOWEST index wins, so a failing run reports the same error no
// matter how the pool interleaved.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes do(ctx, i) for every i in [0, n) on a pool of the given
// size (0 or negative means GOMAXPROCS). It stops claiming new indices as
// soon as the context is cancelled or any call fails, waits for in-flight
// calls, and returns the lowest-index error, or the context error if the
// context was cancelled first.
func Run(ctx context.Context, workers, n int, do func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		errIdx  = n
		firstEr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := do(ctx, i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil && firstEr == nil {
		return err
	}
	return firstEr
}

// Map runs do over [0, n) on the pool and collects the results in index
// order. On error or cancellation the partial results are discarded.
func Map[T any](ctx context.Context, workers, n int, do func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := do(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
