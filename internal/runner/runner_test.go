package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		const n = 1000
		counts := make([]int32, n)
		err := Run(context.Background(), workers, n, func(_ context.Context, i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for trial := 0; trial < 20; trial++ {
		err := Run(context.Background(), 8, 100, func(_ context.Context, i int) error {
			switch i {
			case 3:
				return errA
			case 60:
				return errB
			}
			return nil
		})
		// Index 60 may or may not have been claimed before the stop flag
		// propagated, but if both fail the lower index must win; index 3
		// is always claimed before the pool can drain.
		if err != errA {
			t.Fatalf("trial %d: err = %v, want errA", trial, err)
		}
	}
}

func TestRunStopsAfterError(t *testing.T) {
	var ran atomic.Int32
	_ = Run(context.Background(), 1, 1000, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 5 {
			return errors.New("boom")
		}
		return nil
	})
	if got := ran.Load(); got != 6 {
		t.Errorf("sequential pool ran %d tasks after early error, want 6", got)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- Run(ctx, 2, 100000, func(ctx context.Context, i int) error {
			if ran.Add(1) == 10 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if ran.Load() > 1000 {
		t.Errorf("pool kept claiming after cancel: %d tasks ran", ran.Load())
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := Run(context.Background(), 4, 0, func(context.Context, int) error {
		t.Fatal("do called for empty index space")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMapOrdersResults(t *testing.T) {
	out, err := Map(context.Background(), 8, 500, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapDropsPartialResultsOnError(t *testing.T) {
	out, err := Map(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		if i == 7 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("out = %v, err = %v; want nil, boom", out, err)
	}
}
