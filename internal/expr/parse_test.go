package expr

import (
	"math"
	"testing"
)

func TestParsePaperFunctions(t *testing.T) {
	cases := []struct {
		in      string
		r, n, s float64
		want    float64
	}{
		{"log10(r)*n + 870*log10(s)", 100, 8, 1000, 2*8 + 870*3},
		{"sqrt(r)*n + 2.56e4*log10(s)", 16, 2, 10, 4*2 + 25600},
		{"r*n + 6.86e6*log10(s)", 10, 3, 100, 30 + 6.86e6*2},
		{"r*sqrt(n) + 5.3e5*log10(s)", 5, 16, 10, 20 + 5.3e5},
	}
	for _, c := range cases {
		f, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := f.Eval(c.r, c.n, c.s); math.Abs(got-c.want) > 1e-9*math.Abs(c.want) {
			t.Errorf("Parse(%q).Eval = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseRoundTripsCompact(t *testing.T) {
	// Every enumerated form with assorted coefficients must survive
	// Compact -> Parse -> Eval equivalence.
	coefs := [3]float64{2.5, -0.75, 3e4}
	for _, form := range Enumerate() {
		orig := Func{Form: form, C: coefs}
		parsed, err := Parse(orig.Compact())
		if err != nil {
			t.Fatalf("Parse(Compact(%v)) = %v", form, err)
		}
		for _, pt := range [][3]float64{{1, 1, 1}, {100, 8, 3600}, {27000, 256, 86400}} {
			a := orig.Eval(pt[0], pt[1], pt[2])
			b := parsed.Eval(pt[0], pt[1], pt[2])
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				t.Fatalf("form %v: round-trip eval %v != %v at %v", form, b, a, pt)
			}
		}
	}
}

func TestParseForms(t *testing.T) {
	f, err := Parse("3*(1/r) / 2*log10(n) + s")
	if err != nil {
		t.Fatal(err)
	}
	if f.Form.A != BaseInv || f.Form.B != BaseLog || f.Form.C != BaseID {
		t.Errorf("bases = %v %v %v", f.Form.A, f.Form.B, f.Form.C)
	}
	if f.Form.Op1 != OpDiv || f.Form.Op2 != OpAdd {
		t.Errorf("ops = %v %v", f.Form.Op1, f.Form.Op2)
	}
	if f.C != [3]float64{3, 2, 1} {
		t.Errorf("coefs = %v", f.C)
	}
	// inv() spelling and id() wrappers are accepted too.
	g, err := Parse("id(r) + inv(n) + 0.5*id(s)")
	if err != nil {
		t.Fatal(err)
	}
	if g.Form.B != BaseInv || g.C[2] != 0.5 {
		t.Errorf("parsed = %+v", g)
	}
}

func TestParseNegativeAndExponentCoefficients(t *testing.T) {
	f, err := Parse("-2*r + 1.5e-3*n + +4*s")
	if err != nil {
		t.Fatal(err)
	}
	if f.C != [3]float64{-2, 1.5e-3, 4} {
		t.Errorf("coefs = %v", f.C)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"r + n",            // two terms only
		"r + n + s + r",    // four terms
		"n + r + s",        // wrong variable order
		"r + n * bogus(s)", // unknown base
		"r + n + log10(s",  // missing paren
		"r & n + s",        // unknown operator
		"log10(x) + n + s", // unknown variable
		"r + n + 3*",       // dangling coefficient
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}
