package expr

import (
	"math"
	"testing"
)

// FuzzParse feeds arbitrary strings to the function parser: it must never
// panic, and anything it accepts must evaluate finitely on clamped inputs
// and re-parse from its own Compact rendering to an equivalent function.
func FuzzParse(f *testing.F) {
	f.Add("log10(r)*n + 870*log10(s)")
	f.Add("sqrt(r)*n + 2.56e4*log10(s)")
	f.Add("r*n + 6.86e6*log10(s)")
	f.Add("3*(1/r) / 2*log10(n) + s")
	f.Add("r + n + s")
	f.Add("-2*r + 1.5e-3*n + +4*s")
	f.Add("")
	f.Add("r*n*s")
	f.Add("((((")
	f.Add("1/0*r + n + s")
	// Seed every candidate shape of the family (all 576 forms), rendered
	// with non-unit coefficients so the corpus covers coefficient parsing
	// in every operator/base combination, not just the hand-picked cases.
	for _, form := range Enumerate() {
		f.Add(Func{Form: form, C: [3]float64{1.5, 2.25, 870.5}}.Compact())
	}
	f.Fuzz(func(t *testing.T, input string) {
		fn, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		v := fn.Eval(100, 8, 3600)
		if math.IsNaN(v) {
			// NaN can only come from NaN coefficients; Parse reads finite
			// literals, so this would be a bug.
			t.Fatalf("accepted %q evaluates to NaN", input)
		}
		back, err := Parse(fn.Compact())
		if err != nil {
			t.Fatalf("Compact() of accepted input %q does not re-parse: %v", input, err)
		}
		// Compact renders coefficients with 6 significant digits, so the
		// round trip is exact to ~1e-6 relative.
		for _, pt := range [][3]float64{{1, 1, 1}, {500, 16, 7200}} {
			a, b := fn.Eval(pt[0], pt[1], pt[2]), back.Eval(pt[0], pt[1], pt[2])
			if math.Abs(a-b) > 1e-5*(1+math.Abs(a)) && !(math.IsInf(a, 0) && math.IsInf(b, 0)) {
				t.Fatalf("round trip of %q diverges: %v vs %v", input, a, b)
			}
		}
	})
}
