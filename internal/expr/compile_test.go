package expr

import (
	"math"
	"testing"

	"github.com/hpcsched/gensched/internal/dist"
)

// bitsEqual compares two float64 values for exact bit identity.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestCompileBitIdenticalAllForms is the differential harness pinning the
// compiled evaluator to the interpreted one: every form of the 576-member
// family, several coefficient regimes (including zero and negative
// coefficients that exercise the division guard), and fuzzed inputs
// spanning the clamp edges must produce bit-identical outputs.
func TestCompileBitIdenticalAllForms(t *testing.T) {
	coefSets := [][3]float64{
		{1, 1, 1},
		{1, 1, 870},            // F1's published constants
		{0.001, 1, 6.86e6},     // the magnitude spread real fits produce
		{-2.5, 0.75, -1e-9},    // negative and tiny coefficients
		{0, 1, 1},              // zero numerator terms
		{1, 0, 1},              // zero denominator terms (division guard)
		{1, 1, 0},              // zero trailing term
		{math.Pi, -math.E, 42}, // irrational constants
	}
	edgeInputs := []float64{
		0, 1, 0.5, -3, 1e-300, 27000, 86400, 1e18,
		math.NaN(), math.Inf(1), 0.999999999, 1.0000001,
	}
	rng := dist.New(20260730)
	fuzz := make([]float64, 64)
	for i := range fuzz {
		// Log-uniform over the training ranges, occasionally below clamp.
		fuzz[i] = math.Exp(rng.Float64()*30 - 3)
	}
	inputs := append(edgeInputs, fuzz...)

	forms := Enumerate()
	if len(forms) != 576 {
		t.Fatalf("Enumerate returned %d forms, want 576", len(forms))
	}
	for _, form := range forms {
		for _, coef := range coefSets {
			f := Func{Form: form, C: coef}
			compiled := f.Compile()
			for _, r := range inputs {
				for _, n := range inputs[:8] { // cube over edges would explode; slice the axes
					for _, s := range inputs[8:12] {
						want := f.Eval(r, n, s)
						got := compiled(r, n, s)
						if !bitsEqual(want, got) {
							t.Fatalf("%v coef=%v at (r=%g n=%g s=%g): Eval=%x Compile=%x",
								f, coef, r, n, s,
								math.Float64bits(want), math.Float64bits(got))
						}
					}
				}
			}
		}
	}
}

// TestCompileBitIdenticalRandomTriples drives every form with fully random
// (r, n, s) triples and random coefficients — the broad fuzz complementing
// the edge-case grid above.
func TestCompileBitIdenticalRandomTriples(t *testing.T) {
	rng := dist.New(7)
	draw := func() float64 {
		switch rng.IntN(8) {
		case 0:
			return 0
		case 1:
			return -rng.Float64() * 100
		case 2:
			return rng.Float64() // inside the clamp
		default:
			return math.Exp(rng.Float64() * 25)
		}
	}
	for _, form := range Enumerate() {
		for trial := 0; trial < 24; trial++ {
			f := Func{Form: form, C: [3]float64{draw(), draw(), draw()}}
			compiled := f.Compile()
			r, n, s := draw(), draw(), draw()
			want := f.Eval(r, n, s)
			got := compiled(r, n, s)
			if !bitsEqual(want, got) {
				t.Fatalf("%v at (r=%g n=%g s=%g): Eval=%x Compile=%x",
					f, r, n, s, math.Float64bits(want), math.Float64bits(got))
			}
		}
	}
}

// TestCombineFuncBitIdentical pins the specialized combine against
// Form.Combine over every form, random coefficients and precomputed base
// values — the contract the regression engine's inner loops rely on.
func TestCombineFuncBitIdentical(t *testing.T) {
	rng := dist.New(31)
	for _, form := range Enumerate() {
		combine := form.CombineFunc()
		for trial := 0; trial < 32; trial++ {
			coef := [3]float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2, rng.Float64() * 1e6}
			if trial%5 == 0 {
				coef[trial%3] = 0 // exercise the division guard
			}
			a := math.Exp(rng.Float64() * 10)
			b := math.Exp(rng.Float64() * 6)
			c := math.Exp(rng.Float64() * 12)
			want := form.Combine(coef, a, b, c)
			got := combine(coef, a, b, c)
			if !bitsEqual(want, got) {
				t.Fatalf("form %v coef=%v at (%g,%g,%g): Combine=%x CombineFunc=%x",
					form, coef, a, b, c, math.Float64bits(want), math.Float64bits(got))
			}
		}
	}
}

// TestCompiledDivGuard pins the division guard: a zero denominator is
// substituted with the smallest positive float, exactly as Op.Apply does.
func TestCompiledDivGuard(t *testing.T) {
	// c2 = 0 zeroes the denominator term for any n.
	f := Func{
		Form: Form{A: BaseID, B: BaseID, C: BaseID, Op1: OpDiv, Op2: OpAdd},
		C:    [3]float64{3, 0, 1},
	}
	want := f.Eval(6, 50, 2)
	got := f.Compile()(6, 50, 2)
	if !bitsEqual(want, got) {
		t.Fatalf("div guard: Eval=%g Compile=%g", want, got)
	}
	if math.IsInf(got, 0) != math.IsInf(want, 0) {
		t.Fatalf("div guard disagreement: Eval=%g Compile=%g", want, got)
	}
}

// TestCompileConcurrentUse exercises one compiled closure from several
// goroutines — it must be stateless and race-free (the scheduling engines
// share one policy value across parallel simulations).
func TestCompileConcurrentUse(t *testing.T) {
	f := Func{
		Form: Form{A: BaseLog, B: BaseID, C: BaseLog, Op1: OpMul, Op2: OpAdd},
		C:    [3]float64{1, 1, 870},
	}
	compiled := f.Compile()
	want := f.Eval(3600, 16, 7200)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				if got := compiled(3600, 16, 7200); !bitsEqual(got, want) {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "compiled result diverged under concurrency" }
