package expr

import "math"

// This file is the compiled fast path for policy-function evaluation.
// Func.Eval walks the form: one switch per base function and a
// precedence/operator dispatch per call — fine for fitting diagnostics,
// wasteful on the scheduling hot path where the same function scores every
// waiting task at every queue re-rank. Compile folds the dispatch away
// once: the three base functions become direct calls, the coefficients are
// captured as constants, and the operator structure is specialized into
// one closure per (op1, op2) pair.
//
// Contract: the compiled function is bit-identical to Eval for every
// input, including the clamp below minArg, NaN absorption, and the
// division-by-zero guard. The scheduling engines and the regression both
// rely on this — swapping the evaluator must not move a single start time
// — and compile_test.go pins it over the whole 576-form family. To keep
// the guarantee, every closure below performs the same floating-point
// operations in the same order as Form.Combine, with each intermediate
// materialized exactly where the interpreted path rounds.

// baseEval returns the concrete evaluation function of a base: the same
// clamped transform Base.Eval applies, minus the per-call switch.
func baseEval(b Base) func(float64) float64 {
	switch b {
	case BaseID:
		return evalBaseID
	case BaseLog:
		return evalBaseLog
	case BaseSqrt:
		return evalBaseSqrt
	case BaseInv:
		return evalBaseInv
	default:
		// Unreachable for family forms; mirror Base.Eval's failure mode.
		return func(x float64) float64 { return b.Eval(x) }
	}
}

func clampArg(x float64) float64 {
	if x < minArg || math.IsNaN(x) {
		return minArg
	}
	return x
}

func evalBaseID(x float64) float64   { return clampArg(x) }
func evalBaseLog(x float64) float64  { return math.Log10(clampArg(x)) }
func evalBaseSqrt(x float64) float64 { return math.Sqrt(clampArg(x)) }
func evalBaseInv(x float64) float64  { return 1 / clampArg(x) }

// compiledDiv is Op.Apply's OpDiv semantics: a zero denominator is
// replaced by the smallest positive float so candidate functions stay
// finite during regression and scheduling.
func compiledDiv(a, b float64) float64 {
	if b == 0 {
		b = math.SmallestNonzeroFloat64
	}
	return a / b
}

// CombineFunc returns a specialized version of Form.Combine for this
// form's operator pair: the same floating-point operations in the same
// order, with the per-call precedence dispatch resolved once. The
// returned function is a package-level func value (no captures, no
// allocation) — the regression engine hoists it out of its per-sample
// residual and ranking loops. Bit-identical to Combine by construction;
// the compile differential test covers it through Compile, which shares
// the same operator bodies.
func (f Form) CombineFunc() func(coef [3]float64, a, b, c float64) float64 {
	switch {
	case f.Op1 == OpMul && f.Op2 == OpAdd:
		return combineMulAdd
	case f.Op1 == OpAdd && f.Op2 == OpAdd:
		return combineAddAdd
	case f.Op1 == OpDiv && f.Op2 == OpAdd:
		return combineDivAdd
	case f.Op1 == OpAdd && f.Op2 == OpMul:
		return combineAddMul
	case f.Op1 == OpAdd && f.Op2 == OpDiv:
		return combineAddDiv
	case f.Op1 == OpMul && f.Op2 == OpMul:
		return combineMulMul
	case f.Op1 == OpMul && f.Op2 == OpDiv:
		return combineMulDiv
	case f.Op1 == OpDiv && f.Op2 == OpMul:
		return combineDivMul
	default: // OpDiv, OpDiv
		return combineDivDiv
	}
}

func combineMulAdd(k [3]float64, a, b, c float64) float64 {
	t1, t2, t3 := k[0]*a, k[1]*b, k[2]*c
	x := t1 * t2
	return x + t3
}

func combineAddAdd(k [3]float64, a, b, c float64) float64 {
	t1, t2, t3 := k[0]*a, k[1]*b, k[2]*c
	return t1 + t2 + t3
}

func combineDivAdd(k [3]float64, a, b, c float64) float64 {
	t1, t2, t3 := k[0]*a, k[1]*b, k[2]*c
	x := compiledDiv(t1, t2)
	return x + t3
}

func combineAddMul(k [3]float64, a, b, c float64) float64 {
	t1, t2, t3 := k[0]*a, k[1]*b, k[2]*c
	x := t2 * t3
	return t1 + x
}

func combineAddDiv(k [3]float64, a, b, c float64) float64 {
	t1, t2, t3 := k[0]*a, k[1]*b, k[2]*c
	x := compiledDiv(t2, t3)
	return t1 + x
}

func combineMulMul(k [3]float64, a, b, c float64) float64 {
	t1, t2, t3 := k[0]*a, k[1]*b, k[2]*c
	return t1 * t2 * t3
}

func combineMulDiv(k [3]float64, a, b, c float64) float64 {
	t1, t2, t3 := k[0]*a, k[1]*b, k[2]*c
	return compiledDiv(t1*t2, t3)
}

func combineDivMul(k [3]float64, a, b, c float64) float64 {
	t1, t2, t3 := k[0]*a, k[1]*b, k[2]*c
	x := compiledDiv(t1, t2)
	return x * t3
}

func combineDivDiv(k [3]float64, a, b, c float64) float64 {
	t1, t2, t3 := k[0]*a, k[1]*b, k[2]*c
	x := compiledDiv(t1, t2)
	return compiledDiv(x, t3)
}

// Compile specializes the function into a closure with the operator
// dispatch and coefficient loads folded away: the three base functions
// become direct calls and the operator structure is the CombineFunc
// specialization of the form — one shared set of operator bodies carries
// the bit-identity contract for both the compiled evaluator and the
// regression's inner loops. The result is safe for concurrent use and
// bit-identical to Eval on every input.
func (f Func) Compile() func(r, n, s float64) float64 {
	fa, fb, fc := baseEval(f.Form.A), baseEval(f.Form.B), baseEval(f.Form.C)
	combine := f.Form.CombineFunc()
	coef := f.C
	return func(r, n, s float64) float64 {
		return combine(coef, fa(r), fb(n), fc(s))
	}
}
