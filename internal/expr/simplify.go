package expr

import (
	"fmt"
	"math"
)

// Simplified rewrites the function the way the paper presents Table 3:
// when the r and n terms form a multiplicative group, the product of their
// coefficients is divided out of the whole function (a positive rescale
// preserves the induced scheduling order), merging c1, c2, c3 into a single
// constant in front of the s term — e.g.
//
//	(c1·log10(r)) · (c2·n) + (c3·log10(s))  →  log10(r)·n + (c3/(c1·c2))·log10(s).
//
// The second return value reports whether a rescale was performed; when the
// group's scale is non-positive or the structure doesn't allow an
// order-preserving rescale, the function is returned unchanged.
func (f Func) Simplified() (Func, bool) {
	op1, op2 := f.Form.Op1, f.Form.Op2
	// Only the shape (c1·A(r) op1 c2·B(n)) op2 c3·C(s) with a
	// multiplicative op1 group and an additive op2 can be rescaled while
	// provably preserving order: f/k with k>0 is monotone.
	if op1 == OpAdd || op2 != OpAdd {
		return f, false
	}
	var scale float64
	switch op1 {
	case OpMul:
		scale = f.C[0] * f.C[1]
	case OpDiv:
		if f.C[1] == 0 {
			return f, false
		}
		scale = f.C[0] / f.C[1]
	}
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return f, false
	}
	out := f
	out.C[0] = 1
	out.C[1] = 1
	out.C[2] = f.C[2] / scale
	return out, true
}

// Compact renders the function in the compact mathematical style of
// Table 3, dropping unit coefficients and id() wrappers, e.g.
// "log10(r)*n + 8.70e+02*log10(s)".
func (f Func) Compact() string {
	term := func(c float64, b Base, v string) string {
		var body string
		switch b {
		case BaseID:
			body = v
		case BaseLog:
			body = "log10(" + v + ")"
		case BaseSqrt:
			body = "sqrt(" + v + ")"
		case BaseInv:
			body = "(1/" + v + ")"
		}
		if c == 1 {
			return body
		}
		// Six significant digits: compact enough for Table 3 style
		// display, precise enough that Parse(Compact()) reproduces the
		// induced scheduling order.
		return fmt.Sprintf("%.6g*%s", c, body)
	}
	t1 := term(f.C[0], f.Form.A, "r")
	t2 := term(f.C[1], f.Form.B, "n")
	t3 := term(f.C[2], f.Form.C, "s")
	j := func(op Op) string {
		if op == OpAdd {
			return " + "
		}
		return op.String()
	}
	return t1 + j(f.Form.Op1) + t2 + j(f.Form.Op2) + t3
}
