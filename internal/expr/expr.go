// Package expr implements the family of candidate nonlinear functions the
// paper fits to the score distribution (§3.3):
//
//	f = (c1·α(r)) op1 (c2·β(n)) op2 (c3·γ(s))
//
// where α, β, γ are the base functions of Table 1 (id, log10, sqrt, inv),
// op1 and op2 are +, · or ÷, and c1, c2, c3 are coefficients found by
// weighted nonlinear regression. Operators follow standard precedence
// (· and ÷ bind tighter than +, multiplicative runs associate left), which
// reproduces the shapes in Table 3 such as log10(r)·n + K·log10(s).
package expr

import (
	"fmt"
	"math"
	"strings"
)

// Base enumerates the base functions of Table 1.
type Base int

// Base function identifiers, in the paper's Table 1 order.
const (
	BaseID   Base = iota // id(x) = x
	BaseLog              // log(x) = log10(x)
	BaseSqrt             // sqrt(x) = √x
	BaseInv              // inv(x) = 1/x
	numBases
)

// NumBases is the size of the Table 1 base-function set; valid Base
// values are 0..NumBases-1. The regression engine sizes its shared
// feature planes with it.
const NumBases = int(numBases)

// clampArg guards the base functions against the singularities at and below
// zero. Runtimes, core counts and (rebased) submit times are all >= 1 in
// SWF data, so clamping to 1 changes nothing on real inputs while keeping
// the regression finite everywhere.
const minArg = 1.0

// Eval applies the base function with its argument clamped to >= 1.
func (b Base) Eval(x float64) float64 {
	if x < minArg || math.IsNaN(x) {
		x = minArg
	}
	switch b {
	case BaseID:
		return x
	case BaseLog:
		return math.Log10(x)
	case BaseSqrt:
		return math.Sqrt(x)
	case BaseInv:
		return 1 / x
	default:
		panic(fmt.Sprintf("expr: unknown base function %d", int(b)))
	}
}

// String returns the Table 1 name of the base function.
func (b Base) String() string {
	switch b {
	case BaseID:
		return "id"
	case BaseLog:
		return "log10"
	case BaseSqrt:
		return "sqrt"
	case BaseInv:
		return "inv"
	default:
		return fmt.Sprintf("base(%d)", int(b))
	}
}

// Op enumerates the binary operators of the family.
type Op int

// Operators, in the paper's order: sum, multiplication, division.
const (
	OpAdd Op = iota
	OpMul
	OpDiv
	numOps
)

// String returns the operator symbol.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Apply evaluates the operator. Division guards against zero denominators
// by substituting a tiny epsilon, so candidate functions stay finite during
// regression; the guard never triggers on clamped base-function outputs
// except inv outputs multiplied by tiny coefficients.
func (o Op) Apply(a, b float64) float64 {
	switch o {
	case OpAdd:
		return a + b
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			b = math.SmallestNonzeroFloat64
		}
		return a / b
	default:
		panic(fmt.Sprintf("expr: unknown operator %d", int(o)))
	}
}

// Form is one member of the function family without coefficients: the
// choice of base functions for r, n, s and the two operators.
type Form struct {
	A, B, C  Base // base functions applied to r, n, s respectively
	Op1, Op2 Op
}

// String renders the form with unit coefficients, e.g.
// "log10(r)*id(n)+log10(s)".
func (f Form) String() string {
	return fmt.Sprintf("%s(r)%s%s(n)%s%s(s)", f.A, f.Op1, f.B, f.Op2, f.C)
}

// Terms returns the three base-function values for a sample, in order.
func (f Form) Terms(r, n, s float64) (a, b, c float64) {
	return f.A.Eval(r), f.B.Eval(n), f.C.Eval(s)
}

// Enumerate returns all 4·4·4·3·3 = 576 forms of the family, in a fixed
// deterministic order (r-base fastest, op2 slowest).
func Enumerate() []Form {
	forms := make([]Form, 0, int(numBases)*int(numBases)*int(numBases)*int(numOps)*int(numOps))
	for op2 := Op(0); op2 < numOps; op2++ {
		for op1 := Op(0); op1 < numOps; op1++ {
			for c := Base(0); c < numBases; c++ {
				for b := Base(0); b < numBases; b++ {
					for a := Base(0); a < numBases; a++ {
						forms = append(forms, Form{A: a, B: b, C: c, Op1: op1, Op2: op2})
					}
				}
			}
		}
	}
	return forms
}

// Func is a form with fitted coefficients: a complete scheduling policy
// function f(r, n, s).
type Func struct {
	Form Form
	C    [3]float64 // c1, c2, c3
}

// Eval computes f(r, n, s) honoring standard operator precedence.
func (f Func) Eval(r, n, s float64) float64 {
	a, b, c := f.Form.Terms(r, n, s)
	return f.Form.Combine(f.C, a, b, c)
}

// Combine applies the coefficient-weighted operator structure to already
// computed base-function values a = α(r), b = β(n), c = γ(s). The
// regression engine precomputes base values once per sample and calls
// Combine in its inner loop.
func (f Form) Combine(coef [3]float64, a, b, c float64) float64 {
	t1, t2, t3 := coef[0]*a, coef[1]*b, coef[2]*c
	switch {
	case f.Op1 != OpAdd:
		// (t1 op1 t2) then op2: the multiplicative group binds first and
		// associates left, so ((t1 op1 t2) op2 t3) is also correct when
		// op2 is multiplicative.
		return f.Op2.Apply(f.Op1.Apply(t1, t2), t3)
	case f.Op2 != OpAdd:
		// t1 + (t2 op2 t3): the multiplicative group on the right binds
		// before the sum.
		return t1 + f.Op2.Apply(t2, t3)
	default:
		return t1 + t2 + t3
	}
}

// String renders the function in the artifact's output style, e.g.
// "(0.0010 x log10(r)) * (1.0000 x id(n)) + (870.0000 x log10(s))".
func (f Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "(%.6g x %s(r)) %s (%.6g x %s(n)) %s (%.6g x %s(s))",
		f.C[0], f.Form.A, f.Form.Op1, f.C[1], f.Form.B, f.Form.Op2, f.C[2], f.Form.C)
	return sb.String()
}
