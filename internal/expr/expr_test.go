package expr

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hpcsched/gensched/internal/dist"
)

func TestBaseEval(t *testing.T) {
	cases := []struct {
		b    Base
		x    float64
		want float64
	}{
		{BaseID, 5, 5},
		{BaseLog, 100, 2},
		{BaseSqrt, 16, 4},
		{BaseInv, 4, 0.25},
		// Clamping below 1.
		{BaseLog, 0, 0},
		{BaseInv, 0, 1},
		{BaseSqrt, -3, 1},
		{BaseID, 0.5, 1},
		{BaseLog, math.NaN(), 0},
	}
	for _, c := range cases {
		if got := c.b.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s(%v) = %v, want %v", c.b, c.x, got, c.want)
		}
	}
}

func TestBaseEvalAlwaysFinite(t *testing.T) {
	if err := quick.Check(func(x float64, which uint8) bool {
		b := Base(which % 4)
		v := b.Eval(x)
		return !math.IsNaN(v) && !math.IsInf(v, 0)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestOpApply(t *testing.T) {
	if got := OpAdd.Apply(2, 3); got != 5 {
		t.Errorf("add = %v", got)
	}
	if got := OpMul.Apply(2, 3); got != 6 {
		t.Errorf("mul = %v", got)
	}
	if got := OpDiv.Apply(6, 3); got != 2 {
		t.Errorf("div = %v", got)
	}
	if got := OpDiv.Apply(1, 0); math.IsNaN(got) {
		t.Errorf("div by zero produced NaN")
	}
}

func TestEnumerate(t *testing.T) {
	forms := Enumerate()
	if len(forms) != 576 {
		t.Fatalf("Enumerate returned %d forms, want 576", len(forms))
	}
	seen := make(map[Form]bool, len(forms))
	for _, f := range forms {
		if seen[f] {
			t.Fatalf("duplicate form %v", f)
		}
		seen[f] = true
	}
}

// paperF1 is Table 3's F1: log10(r)·n + 870·log10(s).
func paperF1() Func {
	return Func{
		Form: Form{A: BaseLog, B: BaseID, C: BaseLog, Op1: OpMul, Op2: OpAdd},
		C:    [3]float64{1, 1, 870},
	}
}

func TestEvalPrecedence(t *testing.T) {
	// F1 shape: (1·log10(r)) · (1·n) + (870·log10(s)).
	f := paperF1()
	r, n, s := 100.0, 8.0, 1000.0
	want := 2*8 + 870*3.0
	if got := f.Eval(r, n, s); math.Abs(got-want) > 1e-9 {
		t.Errorf("F1(100,8,1000) = %v, want %v", got, want)
	}

	// Add-then-mul must bind the right group: c1·A + (c2·B · c3·C).
	g := Func{
		Form: Form{A: BaseID, B: BaseID, C: BaseID, Op1: OpAdd, Op2: OpMul},
		C:    [3]float64{1, 2, 3},
	}
	// 5 + (2·7)·(3·11) = 5 + 462.
	if got := g.Eval(5, 7, 11); math.Abs(got-467) > 1e-9 {
		t.Errorf("add-mul precedence: got %v, want 467", got)
	}

	// Mul-then-add: (c1·A · c2·B) + c3·C.
	h := Func{
		Form: Form{A: BaseID, B: BaseID, C: BaseID, Op1: OpMul, Op2: OpAdd},
		C:    [3]float64{1, 2, 3},
	}
	if got := h.Eval(5, 7, 11); math.Abs(got-(5*14+33)) > 1e-9 {
		t.Errorf("mul-add precedence: got %v, want 103", got)
	}

	// Pure multiplicative chain associates left: ((t1/t2)*t3).
	k := Func{
		Form: Form{A: BaseID, B: BaseID, C: BaseID, Op1: OpDiv, Op2: OpMul},
		C:    [3]float64{1, 1, 1},
	}
	if got := k.Eval(10, 5, 3); math.Abs(got-6) > 1e-9 {
		t.Errorf("div-mul chain: got %v, want 6", got)
	}
}

func TestTable3FunctionsBehave(t *testing.T) {
	// All four Table 3 policies must give lower (better) scores to earlier
	// submissions and smaller jobs.
	funcs := []Func{
		paperF1(),
		{Form: Form{A: BaseSqrt, B: BaseID, C: BaseLog, Op1: OpMul, Op2: OpAdd}, C: [3]float64{1, 1, 25600}},
		{Form: Form{A: BaseID, B: BaseID, C: BaseLog, Op1: OpMul, Op2: OpAdd}, C: [3]float64{1, 1, 6.86e6}},
		{Form: Form{A: BaseID, B: BaseSqrt, C: BaseLog, Op1: OpMul, Op2: OpAdd}, C: [3]float64{1, 1, 5.30e5}},
	}
	for i, f := range funcs {
		if f.Eval(100, 8, 100) >= f.Eval(100, 8, 10000) {
			t.Errorf("F%d does not prefer earlier submissions", i+1)
		}
		if f.Eval(10, 8, 500) >= f.Eval(10000, 8, 500) {
			t.Errorf("F%d does not prefer shorter tasks", i+1)
		}
		if f.Eval(100, 2, 500) >= f.Eval(100, 200, 500) {
			t.Errorf("F%d does not prefer smaller tasks", i+1)
		}
	}
}

func TestSimplifiedMergesCoefficients(t *testing.T) {
	raw := Func{
		Form: Form{A: BaseLog, B: BaseID, C: BaseLog, Op1: OpMul, Op2: OpAdd},
		C:    [3]float64{-0.0155, -0.0005, 0.00696},
	}
	s, ok := raw.Simplified()
	if !ok {
		t.Fatal("expected simplification")
	}
	scale := raw.C[0] * raw.C[1] // positive: two negatives
	if math.Abs(s.C[2]-raw.C[2]/scale) > 1e-12 || s.C[0] != 1 || s.C[1] != 1 {
		t.Errorf("simplified coefficients = %v", s.C)
	}
}

func TestSimplifiedRefusesNonPositiveScale(t *testing.T) {
	raw := Func{
		Form: Form{A: BaseLog, B: BaseID, C: BaseLog, Op1: OpMul, Op2: OpAdd},
		C:    [3]float64{-0.01, 0.02, 1},
	}
	if _, ok := raw.Simplified(); ok {
		t.Error("negative scale must not be divided out (it would flip the order)")
	}
	add := Func{Form: Form{Op1: OpAdd, Op2: OpAdd}}
	if _, ok := add.Simplified(); ok {
		t.Error("pure sums have no multiplicative group to merge")
	}
}

func TestSimplifiedPreservesOrderProperty(t *testing.T) {
	rng := dist.New(77)
	forms := Enumerate()
	if err := quick.Check(func(fi uint16, c1, c2, c3 float64) bool {
		f := Func{Form: forms[int(fi)%len(forms)], C: [3]float64{
			math.Mod(c1, 100), math.Mod(c2, 100), math.Mod(c3, 100),
		}}
		for i := range f.C {
			if math.IsNaN(f.C[i]) || math.IsInf(f.C[i], 0) {
				return true
			}
		}
		s, ok := f.Simplified()
		if !ok {
			return true
		}
		// Compare induced pairwise order on random valid job pairs.
		for k := 0; k < 30; k++ {
			r1, n1, s1 := 1+rng.Float64()*1e5, 1+rng.Float64()*255, 1+rng.Float64()*1e5
			r2, n2, s2 := 1+rng.Float64()*1e5, 1+rng.Float64()*255, 1+rng.Float64()*1e5
			d1 := f.Eval(r1, n1, s1) - f.Eval(r2, n2, s2)
			d2 := s.Eval(r1, n1, s1) - s.Eval(r2, n2, s2)
			if d1 > 1e-9 && d2 < -1e-9 || d1 < -1e-9 && d2 > 1e-9 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	f := paperF1()
	if got := f.Form.String(); got != "log10(r)*id(n)+log10(s)" {
		t.Errorf("Form.String() = %q", got)
	}
	if got := f.Compact(); got != "log10(r)*n + 870*log10(s)" {
		t.Errorf("Compact() = %q", got)
	}
	if f.String() == "" {
		t.Error("empty String()")
	}
}
