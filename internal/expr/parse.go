package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a function of the family from its compact textual form, the
// same syntax Compact produces:
//
//	"log10(r)*n + 870*log10(s)"
//	"sqrt(r)*n + 2.56e4*log10(s)"
//	"3*r + 0.5*(1/n) + 2*s"
//
// Grammar: exactly three terms over the variables r, n, s (in that order),
// joined by two operators from {+, *, /}; each term is an optional
// coefficient (with optional '*') applied to a base function of Table 1 —
// id (bare variable), log10(x), sqrt(x), or inv written (1/x). The result
// is a ready-to-evaluate Func, so fitted policies can be persisted as
// plain strings and loaded back.
func Parse(s string) (Func, error) {
	p := &parser{input: s, rest: s}
	terms, ops, err := p.parse()
	if err != nil {
		return Func{}, fmt.Errorf("expr: parsing %q: %w", s, err)
	}
	if len(terms) != 3 || len(ops) != 2 {
		return Func{}, fmt.Errorf("expr: parsing %q: need exactly 3 terms, got %d", s, len(terms))
	}
	wantVars := []string{"r", "n", "s"}
	f := Func{}
	for i, t := range terms {
		if t.variable != wantVars[i] {
			return Func{}, fmt.Errorf("expr: parsing %q: term %d must use variable %q, found %q",
				s, i+1, wantVars[i], t.variable)
		}
		f.C[i] = t.coef
	}
	f.Form = Form{A: terms[0].base, B: terms[1].base, C: terms[2].base, Op1: ops[0], Op2: ops[1]}
	return f, nil
}

// term is one parsed coefficient-times-base-function unit.
type term struct {
	coef     float64
	base     Base
	variable string
}

type parser struct {
	input string
	rest  string
}

func (p *parser) parse() ([]term, []Op, error) {
	var terms []term
	var ops []Op
	t, err := p.parseTerm()
	if err != nil {
		return nil, nil, err
	}
	terms = append(terms, t)
	for {
		p.skipSpace()
		if p.rest == "" {
			return terms, ops, nil
		}
		op, err := p.parseOp()
		if err != nil {
			return nil, nil, err
		}
		t, err := p.parseTerm()
		if err != nil {
			return nil, nil, err
		}
		ops = append(ops, op)
		terms = append(terms, t)
	}
}

func (p *parser) skipSpace() { p.rest = strings.TrimLeft(p.rest, " \t") }

func (p *parser) parseOp() (Op, error) {
	p.skipSpace()
	if p.rest == "" {
		return 0, fmt.Errorf("expected operator, found end of input")
	}
	switch p.rest[0] {
	case '+':
		p.rest = p.rest[1:]
		return OpAdd, nil
	case '*':
		p.rest = p.rest[1:]
		return OpMul, nil
	case '/':
		p.rest = p.rest[1:]
		return OpDiv, nil
	}
	return 0, fmt.Errorf("expected operator at %q", p.rest)
}

// parseTerm reads [coef ['*']] base, where base is one of
// v | log10(v) | sqrt(v) | (1/v) with v in {r, n, s}.
func (p *parser) parseTerm() (term, error) {
	p.skipSpace()
	t := term{coef: 1}
	// Optional leading coefficient (a number possibly followed by '*').
	if n, rest, ok := p.peekNumber(); ok {
		t.coef = n
		p.rest = rest
		p.skipSpace()
		if strings.HasPrefix(p.rest, "*") {
			p.rest = p.rest[1:]
			p.skipSpace()
		} else {
			// "870log10(s)" without '*' is also accepted.
		}
	}
	switch {
	case strings.HasPrefix(p.rest, "log10("):
		v, err := p.parseParenVar(len("log10("))
		if err != nil {
			return t, err
		}
		t.base, t.variable = BaseLog, v
	case strings.HasPrefix(p.rest, "sqrt("):
		v, err := p.parseParenVar(len("sqrt("))
		if err != nil {
			return t, err
		}
		t.base, t.variable = BaseSqrt, v
	case strings.HasPrefix(p.rest, "(1/"):
		v, err := p.parseParenVar(len("(1/"))
		if err != nil {
			return t, err
		}
		t.base, t.variable = BaseInv, v
	case strings.HasPrefix(p.rest, "inv("):
		v, err := p.parseParenVar(len("inv("))
		if err != nil {
			return t, err
		}
		t.base, t.variable = BaseInv, v
	case strings.HasPrefix(p.rest, "id("):
		v, err := p.parseParenVar(len("id("))
		if err != nil {
			return t, err
		}
		t.base, t.variable = BaseID, v
	default:
		v, ok := p.peekVar()
		if !ok {
			return t, fmt.Errorf("expected base function at %q", p.rest)
		}
		t.base, t.variable = BaseID, v
	}
	return t, nil
}

// parseParenVar consumes prefixLen bytes, then "v)" for a variable v.
func (p *parser) parseParenVar(prefixLen int) (string, error) {
	p.rest = p.rest[prefixLen:]
	v, ok := p.peekVar()
	if !ok {
		return "", fmt.Errorf("expected variable at %q", p.rest)
	}
	p.skipSpace()
	if !strings.HasPrefix(p.rest, ")") {
		return "", fmt.Errorf("expected ')' at %q", p.rest)
	}
	p.rest = p.rest[1:]
	return v, nil
}

// peekVar consumes one of the variables r, n, s.
func (p *parser) peekVar() (string, bool) {
	p.skipSpace()
	if p.rest == "" {
		return "", false
	}
	switch p.rest[0] {
	case 'r', 'n', 's':
		// Must not be the start of a longer identifier like "sqrt".
		if len(p.rest) > 1 && isIdentChar(p.rest[1]) {
			return "", false
		}
		v := p.rest[:1]
		p.rest = p.rest[1:]
		return v, true
	}
	return "", false
}

// isIdentChar reports whether c could continue an identifier like "sqrt";
// peekVar uses it to keep the 's' of "sqrt(" from parsing as the variable.
func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c == '_'
}

// peekNumber tries to read a float at the head of rest.
func (p *parser) peekNumber() (float64, string, bool) {
	i := 0
	seenDigit := false
	for i < len(p.rest) {
		c := p.rest[i]
		switch {
		case c >= '0' && c <= '9':
			seenDigit = true
			i++
		case c == '.', c == '-' && i == 0, c == '+' && i == 0:
			i++
		case (c == 'e' || c == 'E') && seenDigit:
			// Exponent: consume optional sign and digits.
			j := i + 1
			if j < len(p.rest) && (p.rest[j] == '+' || p.rest[j] == '-') {
				j++
			}
			k := j
			for k < len(p.rest) && p.rest[k] >= '0' && p.rest[k] <= '9' {
				k++
			}
			if k == j {
				// Not an exponent ("e" belonged to something else).
				goto done
			}
			i = k
			goto done
		default:
			goto done
		}
	}
done:
	if !seenDigit {
		return 0, "", false
	}
	v, err := strconv.ParseFloat(p.rest[:i], 64)
	if err != nil {
		return 0, "", false
	}
	return v, p.rest[i:], true
}
