package expr

import (
	"math"
	"testing"
)

// evalGrid spans the training ranges of (r, n, s), plus the clamp edge.
var evalGrid = [][3]float64{
	{1, 1, 1}, {10, 2, 60}, {100, 8, 3600}, {900, 16, 7200},
	{3600, 64, 43200}, {27000, 256, 86400}, {500, 3, 700000},
}

// equivalent reports whether two functions compute the same values on the
// grid, to the 6-significant-digit precision Compact renders.
func equivalent(a, b Func) bool {
	for _, p := range evalGrid {
		va, vb := a.Eval(p[0], p[1], p[2]), b.Eval(p[0], p[1], p[2])
		if math.IsInf(va, 0) && math.IsInf(vb, 0) && math.Signbit(va) == math.Signbit(vb) {
			continue
		}
		if math.Abs(va-vb) > 1e-5*(1+math.Abs(va)) {
			return false
		}
	}
	return true
}

// orderEquivalent reports whether two functions induce the same ordering
// over the grid points — the property that matters for a scheduling
// policy (ties excepted; the grid has none for these functions).
func orderEquivalent(a, b Func) bool {
	for i := range evalGrid {
		for k := i + 1; k < len(evalGrid); k++ {
			ai := a.Eval(evalGrid[i][0], evalGrid[i][1], evalGrid[i][2])
			ak := a.Eval(evalGrid[k][0], evalGrid[k][1], evalGrid[k][2])
			bi := b.Eval(evalGrid[i][0], evalGrid[i][1], evalGrid[i][2])
			bk := b.Eval(evalGrid[k][0], evalGrid[k][1], evalGrid[k][2])
			if (ai < ak) != (bi < bk) {
				return false
			}
		}
	}
	return true
}

// TestTable3RoundTrip runs every Table 3 policy string — the exact
// textual forms the fitting tools print and deployments feed back through
// ParsePolicy — through parse → simplify → re-print → re-parse, and
// requires algebraic equivalence at every step.
func TestTable3RoundTrip(t *testing.T) {
	table3 := []struct {
		name string
		src  string
	}{
		{"F1", "log10(r)*n + 870*log10(s)"},
		{"F2", "sqrt(r)*n + 2.56e4*log10(s)"},
		{"F3", "r*n + 6.86e6*log10(s)"},
		{"F4", "r*sqrt(n) + 5.30e5*log10(s)"},
		// Scaled variants: the same policies with the multiplicative
		// group's constants not yet divided out, the raw shape a fit
		// produces before Table 3 presentation.
		{"F1-raw", "2*log10(r)*3*n + 5220*log10(s)"},
		{"F3-raw", "0.5*r*4*n + 1.372e7*log10(s)"},
	}
	for _, tc := range table3 {
		f, err := Parse(tc.src)
		if err != nil {
			t.Errorf("%s: %q does not parse: %v", tc.name, tc.src, err)
			continue
		}
		// Simplify: Table 3 presentation divides the multiplicative
		// group's scale out; the induced scheduling order must not move.
		simplified, ok := f.Simplified()
		if !ok {
			t.Errorf("%s: %q did not simplify", tc.name, tc.src)
		}
		if simplified.C[0] != 1 || simplified.C[1] != 1 {
			t.Errorf("%s: simplified coefficients %v, want unit r and n terms", tc.name, simplified.C)
		}
		if !orderEquivalent(f, simplified) {
			t.Errorf("%s: simplification changed the induced order", tc.name)
		}
		// Re-print and re-parse: the compact rendering is a faithful
		// round trip at 6 significant digits.
		back, err := Parse(simplified.Compact())
		if err != nil {
			t.Errorf("%s: Compact() %q does not re-parse: %v", tc.name, simplified.Compact(), err)
			continue
		}
		if !equivalent(simplified, back) {
			t.Errorf("%s: %q re-parses to a different function", tc.name, simplified.Compact())
		}
		// And the paper's published string stays order-equivalent to its
		// whole round trip.
		if !orderEquivalent(f, back) {
			t.Errorf("%s: full round trip changed the induced order", tc.name)
		}
	}
}

// TestAllFormsRoundTrip pushes every one of the 576 candidate shapes
// through print → parse → print: whatever the fitting pipeline can
// produce must survive persistence as a configuration string.
func TestAllFormsRoundTrip(t *testing.T) {
	forms := Enumerate()
	if len(forms) != 576 {
		t.Fatalf("Enumerate() = %d forms, want 576", len(forms))
	}
	coefs := [3]float64{1.5, 2.25, 870.5}
	for _, form := range forms {
		f := Func{Form: form, C: coefs}
		src := f.Compact()
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("form %v: Compact() %q does not parse: %v", form, src, err)
		}
		if back.Form != form {
			t.Fatalf("form %v: round trip changed the form to %v (via %q)", form, back.Form, src)
		}
		if !equivalent(f, back) {
			t.Fatalf("form %v: round trip changed values (via %q)", form, src)
		}
		// Second generation must be a fixed point: printing the parsed
		// function and parsing again changes nothing.
		again, err := Parse(back.Compact())
		if err != nil {
			t.Fatalf("form %v: second-generation %q does not parse: %v", form, back.Compact(), err)
		}
		if !equivalent(back, again) {
			t.Fatalf("form %v: second generation diverged", form)
		}
	}
}
