package gensched_test

import (
	"sync"
	"testing"

	gensched "github.com/hpcsched/gensched"
)

func TestClusterLifecycle(t *testing.T) {
	c, err := gensched.NewCluster(4, gensched.ClusterConfig{
		Policy:   gensched.MustPolicy("FCFS"),
		Backfill: gensched.BackfillEASY,
		Check:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(gensched.Job{ID: 1, Submit: 0, Runtime: 100, Estimate: 100, Cores: 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(gensched.Job{ID: 2, Submit: 0, Runtime: 40, Estimate: 40, Cores: 4}); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(gensched.Job{ID: 3, Submit: 0, Runtime: 50, Estimate: 50, Cores: 1}); err != nil {
		t.Fatal(err)
	}
	started := c.Flush()
	// FCFS+EASY at t=0: job 1 starts, job 2 blocks as head (shadow 100),
	// job 3 backfills beside job 1 (50 <= shadow, 1 core free).
	if len(started) != 2 || started[0].ID != 1 || started[1].ID != 3 || !started[1].Backfilled {
		t.Fatalf("flush started %+v, want jobs 1 and 3 (3 backfilled)", started)
	}
	st := c.Status()
	if st.Running != 2 || st.Queued != 1 || st.FreeCores != 0 {
		t.Fatalf("status: %+v", st)
	}
	for _, step := range []struct {
		at float64
		id int
	}{{50, 3}, {100, 1}, {140, 2}} {
		if _, err := c.AdvanceTo(step.at); err != nil {
			t.Fatal(err)
		}
		if err := c.Complete(step.id); err != nil {
			t.Fatal(err)
		}
		c.Flush()
	}
	m := c.Metrics()
	if m.Completed != 3 || m.Backfilled != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if c.Clock() != 140 {
		t.Errorf("clock = %v, want 140", c.Clock())
	}
	if err := c.Err(); err != nil {
		t.Errorf("invariant check tripped: %v", err)
	}
}

func TestClusterSwapPolicy(t *testing.T) {
	c, err := gensched.NewCluster(1, gensched.ClusterConfig{Policy: gensched.MustPolicy("FCFS")})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(gensched.Job{ID: 1, Submit: 0, Runtime: 10, Estimate: 10, Cores: 1}); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if _, err := c.AdvanceTo(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(gensched.Job{ID: 2, Submit: 1, Runtime: 99, Estimate: 99, Cores: 1}); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if _, err := c.AdvanceTo(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(gensched.Job{ID: 3, Submit: 2, Runtime: 5, Estimate: 5, Cores: 1}); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if err := c.SwapPolicy(gensched.MustPolicy("SPT")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(1); err != nil {
		t.Fatal(err)
	}
	started := c.Flush()
	if len(started) != 1 || started[0].ID != 3 {
		t.Fatalf("after SPT swap started %+v, want the short job 3", started)
	}
}

// TestClusterConcurrentAccess drives a Cluster from several goroutines
// under the race detector; each goroutine owns disjoint job IDs and only
// ever moves the shared clock forward.
func TestClusterConcurrentAccess(t *testing.T) {
	c, err := gensched.NewCluster(64, gensched.ClusterConfig{Policy: gensched.MustPolicy("SPT")})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := g*1000 + i
				if err := c.Submit(gensched.Job{ID: id, Runtime: 10, Estimate: 10, Cores: 1}); err != nil {
					t.Error(err)
					return
				}
				c.Flush()
				if err := c.Complete(id); err != nil {
					t.Error(err)
					return
				}
				c.Flush()
			}
		}(g)
	}
	wg.Wait()
	if m := c.Metrics(); m.Completed != 200 {
		t.Errorf("completed %d jobs, want 200", m.Completed)
	}
}

// TestReplayTraceMatchesSimulate pins the public streaming contract: a
// trace replayed through the online cluster equals a batch Simulate.
func TestReplayTraceMatchesSimulate(t *testing.T) {
	tr, err := gensched.LublinTrace(64, 0.5, 1.0, 99)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gensched.ClusterConfig{
		Policy:   gensched.MustPolicy("F1"),
		Backfill: gensched.BackfillEASY,
		Check:    true,
	}
	got, err := gensched.ReplayTrace(64, tr.Jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gensched.Simulate(64, tr.Jobs, gensched.SimOptions{
		Policy: cfg.Policy, Backfill: cfg.Backfill,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.AVEbsld != want.AVEbsld || got.Makespan != want.Makespan ||
		got.Backfilled != want.Backfilled || got.MaxQueueLen != want.MaxQueueLen {
		t.Errorf("online replay != batch:\n got  %+v\n want %+v",
			summary(got), summary(want))
	}
	for i := range got.Stats {
		if got.Stats[i].Start != want.Stats[i].Start {
			t.Fatalf("job %d start %v != %v", got.Stats[i].Job.ID, got.Stats[i].Start, want.Stats[i].Start)
		}
	}
}

func summary(r *gensched.SimResult) map[string]float64 {
	return map[string]float64{
		"AVEbsld": r.AVEbsld, "Makespan": r.Makespan,
		"Backfilled": float64(r.Backfilled), "MaxQueueLen": float64(r.MaxQueueLen),
	}
}
